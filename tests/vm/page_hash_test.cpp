#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fprop/support/rng.h"
#include "fprop/vm/memory.h"

// Property tests for the copy-on-write convergence check behind the
// harness's golden-reconvergence probe (DESIGN.md §14): matches() must agree
// with a word-for-word comparison against the golden image — pointer
// identity and page hashes are accelerations, never the verdict.

namespace fprop::vm {
namespace {

/// Reference oracle: literal word-for-word equality against the image.
bool full_equal(const AddressSpace& mem, const AddressSpace::Image& golden) {
  if (mem.allocated_words() != golden.words) return false;
  for (std::uint64_t i = 0; i < golden.words; ++i) {
    std::uint64_t live = 0;
    if (!mem.load(AddressSpace::addr_of(i), live)) return false;
    const auto& page = golden.pages[i >> AddressSpace::kPageShift];
    if (live != page->w[i & (AddressSpace::kPageWords - 1)]) return false;
  }
  return true;
}

TEST(PageHash, EmptySpaceMatchesItsOwnImage) {
  AddressSpace mem;
  const AddressSpace::Image golden = mem.save();
  const std::vector<std::uint64_t> hashes =
      AddressSpace::image_page_hashes(golden);
  EXPECT_TRUE(mem.matches(golden, hashes));
}

TEST(PageHash, AllocationWatermarkIsPartOfTheState) {
  AddressSpace mem;
  ASSERT_NE(mem.alloc_words(8), 0u);
  const AddressSpace::Image golden = mem.save();
  const std::vector<std::uint64_t> hashes =
      AddressSpace::image_page_hashes(golden);
  ASSERT_TRUE(mem.matches(golden, hashes));
  // Growing the heap diverges even though every golden word is untouched
  // (the new allocation may sit in the same page as existing words).
  ASSERT_NE(mem.alloc_words(1), 0u);
  EXPECT_FALSE(mem.matches(golden, hashes));
}

TEST(PageHash, HashChangesWhenAnyWordChanges) {
  AddressSpace::Page page{};
  const std::uint64_t h0 = AddressSpace::page_hash(page);
  for (const std::uint64_t idx :
       {std::uint64_t{0}, AddressSpace::kPageWords / 2,
        AddressSpace::kPageWords - 1}) {
    AddressSpace::Page p = page;
    p.w[idx] = 1;
    EXPECT_NE(AddressSpace::page_hash(p), h0) << "word " << idx;
  }
}

// The core property: after a random walk of stores (some into golden pages,
// some rewriting the golden bytes back), matches() == full word-for-word
// equality. Exercises pointer-identical pages, diverged pages (hash filter)
// and pages rewritten back to golden content (hash match + memcmp confirm).
TEST(PageHash, MatchesAgreesWithFullComparisonUnderRandomStores) {
  Xoshiro256 rng(0xfeedbeefu);
  for (int round = 0; round < 40; ++round) {
    AddressSpace mem(1ull << 18);
    // 2.5 pages so stores straddle page boundaries.
    const std::uint64_t nwords = AddressSpace::kPageWords * 5 / 2;
    ASSERT_NE(mem.alloc_words(nwords), 0u);
    for (std::uint64_t i = 0; i < nwords; i += 97) {
      ASSERT_TRUE(mem.store(AddressSpace::addr_of(i), rng.next()));
    }
    const AddressSpace::Image golden = mem.save();
    const std::vector<std::uint64_t> hashes =
        AddressSpace::image_page_hashes(golden);
    ASSERT_TRUE(mem.matches(golden, hashes));

    for (int step = 0; step < 64; ++step) {
      const std::uint64_t i = rng.next() % nwords;
      const std::uint64_t addr = AddressSpace::addr_of(i);
      if (rng.next() % 3 == 0) {
        // Rewrite the golden value back — must re-report convergence once
        // every other diverged word has been restored too.
        const auto& page = golden.pages[i >> AddressSpace::kPageShift];
        ASSERT_TRUE(
            mem.store(addr, page->w[i & (AddressSpace::kPageWords - 1)]));
      } else {
        ASSERT_TRUE(mem.store(addr, rng.next()));
      }
      EXPECT_EQ(mem.matches(golden, hashes), full_equal(mem, golden))
          << "round " << round << " step " << step;
    }
  }
}

TEST(PageHash, RewritingEveryDivergedWordReconverges) {
  Xoshiro256 rng(0x12345u);
  AddressSpace mem(1ull << 18);
  const std::uint64_t nwords = AddressSpace::kPageWords + 17;
  ASSERT_NE(mem.alloc_words(nwords), 0u);
  const AddressSpace::Image golden = mem.save();
  const std::vector<std::uint64_t> hashes =
      AddressSpace::image_page_hashes(golden);

  // Diverge a handful of words across both pages, remembering the originals.
  std::vector<std::uint64_t> touched;
  for (int k = 0; k < 10; ++k) {
    const std::uint64_t i = rng.next() % nwords;
    touched.push_back(i);
    ASSERT_TRUE(mem.store(AddressSpace::addr_of(i), rng.next() | 1));
  }
  EXPECT_FALSE(mem.matches(golden, hashes));

  // Restore them (golden words are all zero here); the pages are now clones
  // with golden content — pointer identity fails, hash + memcmp must pass.
  for (const std::uint64_t i : touched) {
    ASSERT_TRUE(mem.store(AddressSpace::addr_of(i), 0));
  }
  EXPECT_TRUE(mem.matches(golden, hashes));
  EXPECT_TRUE(full_equal(mem, golden));
}

TEST(PageHash, RestoreSharesPagesAndMatchesByPointerIdentity) {
  AddressSpace mem(1ull << 18);
  ASSERT_NE(mem.alloc_words(AddressSpace::kPageWords * 2), 0u);
  ASSERT_TRUE(mem.store(AddressSpace::addr_of(3), 42));
  const AddressSpace::Image golden = mem.save();
  const std::vector<std::uint64_t> hashes =
      AddressSpace::image_page_hashes(golden);

  ASSERT_TRUE(mem.store(AddressSpace::addr_of(3), 7));
  EXPECT_FALSE(mem.matches(golden, hashes));
  mem.restore(golden);
  EXPECT_TRUE(mem.matches(golden, hashes));
  // restore() re-shares the image's pages, so the comparison is pure
  // pointer identity again.
  EXPECT_EQ(mem.pages()[0], golden.pages[0]);
}

}  // namespace
}  // namespace fprop::vm
