// Compiled execution tier (DESIGN.md §13): bytecode lowering edge cases and
// bit-exact equivalence against the reference interpreter. The heavier
// statistical equivalence lives in the bytecode_vs_interp fuzz oracle and the
// golden campaign tests; this file pins the compiler's structural invariants
// and the dispatch loop's semantics on hand-built corner cases.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fprop/ir/builder.h"
#include "fprop/ir/verifier.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/bytecode.h"
#include "fprop/vm/interp.h"

namespace fprop::vm {
namespace {

using ir::Opcode;
using ir::Reg;

struct TierResult {
  RunState state = RunState::Ready;
  Trap trap = Trap::None;
  std::uint64_t cycles = 0;
  std::vector<std::uint64_t> output_bits;
};

TierResult run_tier(const ir::Module& m, const BytecodeModule* bc,
                    std::uint64_t budget = 1ull << 30) {
  Interp interp(m, 0, InterpConfig{});
  if (bc != nullptr) interp.set_bytecode(bc);
  TierResult r;
  r.state = interp.run(budget);
  r.trap = interp.trap();
  r.cycles = interp.cycles();
  for (double v : interp.outputs()) r.output_bits.push_back(bits_of(v));
  return r;
}

// Runs the module on both tiers and asserts bit-exact agreement on state,
// trap, virtual clock and every emitted output.
TierResult expect_tiers_agree(const ir::Module& m) {
  const BytecodeModule bc(m);
  const TierResult ref = run_tier(m, nullptr);
  const TierResult fast = run_tier(m, &bc);
  EXPECT_EQ(ref.state, fast.state);
  EXPECT_EQ(ref.trap, fast.trap);
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_EQ(ref.output_bits, fast.output_bits);
  return fast;
}

TierResult expect_tiers_agree_src(const std::string& src) {
  ir::Module m = minic::compile(src);
  return expect_tiers_agree(m);
}

// Total IR instructions a compiled function covers must equal the function's
// instruction count: every IR position is executed by exactly one bytecode
// instruction (or an Escape), regardless of how fusion grouped them.
void expect_full_coverage(const ir::Module& m, const BytecodeModule& bc) {
  for (std::size_t fi = 0; fi < m.funcs.size(); ++fi) {
    const ir::Function& f = m.funcs[fi];
    const BcFunction& bf = bc.func(static_cast<ir::FuncId>(fi));
    std::size_t ir_count = 0;
    for (const ir::BasicBlock& blk : f.blocks) ir_count += blk.code.size();
    std::size_t covered = 0;
    for (const BcInstr& in : bf.code) covered += bcop_arity(in.op);
    EXPECT_EQ(covered, ir_count) << "function " << f.name;
    ASSERT_EQ(bf.ir2bc.size(), f.blocks.size());
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
      ASSERT_EQ(bf.ir2bc[b].size(), f.blocks[b].code.size());
      // Every block's first instruction is a group head: entry at a block
      // boundary must never need the mid-group escape path.
      if (!bf.ir2bc[b].empty()) {
        EXPECT_GE(bf.ir2bc[b][0], 0) << "block " << b << " head not mapped";
        EXPECT_EQ(static_cast<std::uint32_t>(bf.ir2bc[b][0]),
                  bf.block_start[b]);
      }
    }
  }
}

// --- Compilation edge cases ------------------------------------------------

TEST(BytecodeCompile, EmptyBlocksAndJumpChains) {
  // main: entry jumps through two terminator-only blocks before the body.
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  const ir::BlockId hop1 = b.new_block();
  const ir::BlockId hop2 = b.new_block();
  const ir::BlockId body = b.new_block();
  b.jmp(hop1);
  b.set_insert_point(hop1);
  b.jmp(hop2);
  b.set_insert_point(hop2);
  b.jmp(body);
  b.set_insert_point(body);
  const Reg v = b.const_i(41);
  const Reg one = b.const_i(1);
  const Reg sum = b.binop(Opcode::AddI, v, one);
  b.intrinsic(ir::IntrinsicId::OutputI, {sum});
  b.ret();
  ir::verify(m);

  const BytecodeModule bc(m);
  expect_full_coverage(m, bc);
  const TierResult r = expect_tiers_agree(m);
  ASSERT_EQ(r.output_bits.size(), 1u);
  EXPECT_EQ(r.output_bits[0], bits_of(42.0));
}

TEST(BytecodeCompile, FallthroughOnlyBranches) {
  // Both br targets reach the same continuation; one arm is an empty
  // fallthrough block. The compiler must keep both bytecode branch targets
  // valid and the clock identical whichever arm runs.
  const char* src = R"(
    fn main() {
      var i: int = 0;
      var acc: int = 0;
      while (i < 8) {
        if (i % 2 == 0) {
        } else {
          acc = acc + i;
        }
        i = i + 1;
      }
      output_i(acc);
    }
  )";
  const TierResult r = expect_tiers_agree_src(src);
  ASSERT_EQ(r.output_bits.size(), 1u);
  EXPECT_EQ(r.output_bits[0], bits_of(16.0));  // 1+3+5+7
}

TEST(BytecodeCompile, MaxOperandInstructionFpmStore) {
  // FpmStore carries the IR maximum of four register operands (value,
  // pristine value, address, pristine address). Instrument a store-heavy
  // program and check full coverage plus tier agreement end to end.
  ir::Module m = minic::compile(R"(
    fn main() {
      var a: float* = alloc_float(16);
      var i: int = 0;
      while (i < 16) {
        a[i] = float(i) * 1.5 + 0.25;
        i = i + 1;
      }
      var s: float = 0.0;
      i = 0;
      while (i < 16) {
        s = s + a[i];
        i = i + 1;
      }
      output_f(s);
    }
  )");
  passes::instrument_module(m);
  bool has_fpm_store = false;
  for (const ir::Function& f : m.funcs)
    for (const ir::BasicBlock& blk : f.blocks)
      for (const ir::Instr& in : blk.code)
        if (in.op == Opcode::FpmStore) {
          has_fpm_store = true;
          EXPECT_EQ(in.nops, 4u);
        }
  ASSERT_TRUE(has_fpm_store);

  const BytecodeModule bc(m);
  expect_full_coverage(m, bc);
  expect_tiers_agree(m);
}

TEST(BytecodeCompile, NoFusionAcrossBlockBoundaries) {
  // Two adjacent loads in one block fuse (Load2); the same two loads split
  // across a jump must not — fusion never crosses a basic-block boundary.
  auto build = [](bool split) {
    ir::Module m;
    ir::Function& f = m.add_function("main", ir::Type::Void);
    m.entry = f.id;
    ir::Builder b(f);
    const Reg base = b.intrinsic(ir::IntrinsicId::Alloc, {b.const_i(2)});
    b.store(b.const_f(1.25), base);
    const Reg idx1 = b.const_i(1);
    const Reg slot1 = b.ptr_add(base, idx1);
    b.store(b.const_f(2.5), slot1);
    Reg x;
    Reg y;
    if (split) {
      const ir::BlockId second = b.new_block();
      x = b.load(ir::Type::F64, base);
      b.jmp(second);
      b.set_insert_point(second);
      y = b.load(ir::Type::F64, slot1);
    } else {
      x = b.load(ir::Type::F64, base);
      y = b.load(ir::Type::F64, slot1);
    }
    const Reg sum = b.binop(Opcode::AddF, x, y);
    b.intrinsic(ir::IntrinsicId::OutputF, {sum});
    b.ret();
    ir::verify(m);
    return m;
  };

  const ir::Module fused_m = build(/*split=*/false);
  const ir::Module split_m = build(/*split=*/true);
  const BytecodeModule fused_bc(fused_m);
  const BytecodeModule split_bc(split_m);
  expect_full_coverage(fused_m, fused_bc);
  expect_full_coverage(split_m, split_bc);

  auto count_op = [](const BcFunction& bf, BcOp op) {
    std::size_t n = 0;
    for (const BcInstr& in : bf.code) n += in.op == op ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_op(fused_bc.func(fused_m.entry), BcOp::Load2), 1u);
  EXPECT_EQ(count_op(split_bc.func(split_m.entry), BcOp::Load2), 0u);

  const TierResult a = expect_tiers_agree(fused_m);
  const TierResult b2 = expect_tiers_agree(split_m);
  ASSERT_EQ(a.output_bits.size(), 1u);
  EXPECT_EQ(a.output_bits[0], bits_of(3.75));
  EXPECT_EQ(b2.output_bits[0], bits_of(3.75));
}

TEST(BytecodeCompile, InstrumentedModuleFusesPairs) {
  // Dual-chain instrumentation produces the (primary, shadow) adjacency the
  // fusion pass targets; a real instrumented kernel must fuse something.
  ir::Module m = minic::compile(R"(
    fn main() {
      var a: float* = alloc_float(32);
      var i: int = 0;
      while (i < 32) {
        a[i] = sin(float(i) * 0.1) + 1.0;
        i = i + 1;
      }
      var s: float = 0.0;
      i = 0;
      while (i < 32) {
        s = s + a[i] * 0.5;
        i = i + 1;
      }
      output_f(s);
    }
  )");
  passes::instrument_module(m);
  const BytecodeModule bc(m);
  EXPECT_GT(bc.fused_pairs(), 0u);
  expect_full_coverage(m, bc);
  expect_tiers_agree(m);
}

// --- Execution semantics ---------------------------------------------------

TEST(BytecodeExec, CallRetEscapeEquivalence) {
  const char* src = R"(
    fn fib(n: int) -> int {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() {
      output_i(fib(15));
    }
  )";
  const TierResult r = expect_tiers_agree_src(src);
  ASSERT_EQ(r.output_bits.size(), 1u);
  EXPECT_EQ(r.output_bits[0], bits_of(610.0));
}

TEST(BytecodeExec, TrapMidProgramEquivalence) {
  // The trap must fire at the same virtual cycle on both tiers even when the
  // trapping instruction sits inside a fused group.
  const char* src = R"(
    fn main() {
      var i: int = 0;
      var acc: int = 1;
      while (i < 100) {
        acc = acc * 3 % (7 - i);
        i = i + 1;
      }
      output_i(acc);
    }
  )";
  ir::Module m = minic::compile(src);
  const BytecodeModule bc(m);
  const TierResult ref = run_tier(m, nullptr);
  const TierResult fast = run_tier(m, &bc);
  EXPECT_EQ(ref.state, RunState::Trapped);
  EXPECT_EQ(fast.state, RunState::Trapped);
  EXPECT_EQ(ref.trap, fast.trap);
  EXPECT_EQ(ref.cycles, fast.cycles);
}

TEST(BytecodeExec, SignedZeroFminFmaxTierAgreement) {
  // Regression (fuzz seed 3327): glibc fmin/fmax leave the zero sign
  // unspecified for (+0, -0) and GCC canonicalizes the commutative builtin's
  // operands differently per TU, so the tiers disagreed bit-for-bit on
  // signed-zero results. The VM pins its own semantics (exec_util.h):
  // fmax prefers +0, fmin prefers -0, on both tiers.
  const char* src = R"(
    fn main() {
      var nz: float = -1.7 * 0.0;
      var pz: float = 0.0;
      output_f(fmax(nz, pz));
      output_f(fmax(pz, nz));
      output_f(fmin(nz, pz));
      output_f(fmin(pz, nz));
    }
  )";
  const TierResult r = expect_tiers_agree_src(src);
  ASSERT_EQ(r.output_bits.size(), 4u);
  EXPECT_EQ(r.output_bits[0], bits_of(0.0));   // fmax -> +0 both orders
  EXPECT_EQ(r.output_bits[1], bits_of(0.0));
  EXPECT_EQ(r.output_bits[2], bits_of(-0.0));  // fmin -> -0 both orders
  EXPECT_EQ(r.output_bits[3], bits_of(-0.0));
}

TEST(BytecodeExec, StepBudgetBoundariesMidGroup) {
  // Slicing the run into single-step budgets forces entry and exit at every
  // IR position, including tails inside fused groups (the reference-step
  // escape path). Clock and outputs must match an unsliced bytecode run.
  ir::Module m = minic::compile(R"(
    fn main() {
      var a: float* = alloc_float(8);
      var i: int = 0;
      while (i < 8) {
        a[i] = float(i) * 0.5;
        i = i + 1;
      }
      var s: float = 0.0;
      i = 0;
      while (i < 8) {
        s = s + a[i];
        i = i + 1;
      }
      output_f(s);
    }
  )");
  passes::instrument_module(m);
  const BytecodeModule bc(m);

  const TierResult whole = run_tier(m, &bc);
  ASSERT_EQ(whole.state, RunState::Done);

  for (std::uint64_t budget : {std::uint64_t{1}, std::uint64_t{3},
                               kBcMaxFuse, std::uint64_t{7}}) {
    Interp sliced(m, 0, InterpConfig{});
    sliced.set_bytecode(&bc);
    RunState rs = RunState::Ready;
    std::uint64_t guard = 0;
    do {
      rs = sliced.run(budget);
      ASSERT_LT(++guard, 1u << 20);
    } while (rs == RunState::Ready);
    EXPECT_EQ(rs, whole.state) << "budget " << budget;
    EXPECT_EQ(sliced.cycles(), whole.cycles) << "budget " << budget;
    std::vector<std::uint64_t> out_bits;
    for (double v : sliced.outputs()) out_bits.push_back(bits_of(v));
    EXPECT_EQ(out_bits, whole.output_bits) << "budget " << budget;
  }
}

TEST(BytecodeExec, MixedIntrinsicsEquivalence) {
  const char* src = R"(
    fn main() {
      var x: float = 0.3;
      var i: int = 0;
      while (i < 50) {
        x = sqrt(fabs(sin(x) + cos(x * 0.7))) + exp(-x) * 0.01;
        x = fmin(fmax(x, -10.0), 10.0) + pow(1.001, float(i));
        i = i + imax(1, imin(i, 2));
      }
      output_f(x);
      output_f(floor(x * 3.0));
      output_f(log(fabs(x) + 1.0));
    }
  )";
  expect_tiers_agree_src(src);
}

}  // namespace
}  // namespace fprop::vm
