// Naive taint propagation (fpm/taint.h): semantics of the §3.2 strawman and
// its defining failure — it cannot observe masking, so Table 1 row 4 stays
// "contaminated" under taint while the dual chain proves it clean.

#include <gtest/gtest.h>

#include "fprop/fpm/taint.h"
#include "fprop/inject/injector.h"
#include "fprop/ir/verifier.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace fprop {
namespace {

struct TaintRun {
  std::size_t taint_peak = 0;
  std::size_t taint_final = 0;
  std::vector<double> outputs;
};

TaintRun run_taint(const std::string& src, const inject::InjectionPlan& plan) {
  ir::Module m = minic::compile(src);
  (void)passes::run_fault_injection_pass(m);
  ir::verify(m);
  inject::InjectorRuntime inj(plan);
  fpm::TaintRuntime taint;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_taint(&taint);
  EXPECT_EQ(vm.run(1u << 26), vm::RunState::Done);
  return {taint.peak(), taint.size(), vm.outputs()};
}

TEST(TaintRuntime, LocationBits) {
  fpm::TaintRuntime t;
  EXPECT_FALSE(t.location(800));
  t.set_location(800, true);
  EXPECT_TRUE(t.location(800));
  EXPECT_EQ(t.size(), 1u);
  t.set_location(800, false);
  EXPECT_FALSE(t.location(800));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.peak(), 1u);
  t.set_range(0, 80, true);
  EXPECT_EQ(t.size(), 10u);
  t.set_range(0, 80, false);
  EXPECT_TRUE(t.size() == 0u);
}

TEST(TaintMode, FaultFreeRunStaysClean) {
  const TaintRun r = run_taint(R"(
fn main() {
  var a: float* = alloc_float(4);
  a[0] = 1.5;
  a[1] = a[0] * 2.0;
  output_f(a[1]);
}
)",
                               inject::InjectionPlan{});
  EXPECT_EQ(r.taint_peak, 0u);
}

TEST(TaintMode, InjectedFaultTaintsStores) {
  const TaintRun r = run_taint(R"(
fn main() {
  var m: int* = alloc_int(2);
  var base: int = 19;
  m[0] = base + 0;
  m[1] = m[0] + 5;
  output_i(m[1]);
}
)",
                               inject::InjectionPlan::single(0, 1, 1));
  // The add result is tainted, and so is everything downstream.
  EXPECT_GE(r.taint_peak, 1u);
  EXPECT_EQ(r.outputs[0], 22.0);
}

TEST(TaintMode, CannotSeeMaskingUnlikeDualChain) {
  // Table 1 row 4: a = 19 flipped to 17, b = a >> 2 = 4 either way.
  const char* src = R"(
fn main() {
  var m: int* = alloc_int(2);
  var base: int = 19;
  m[0] = base + 0;
  m[1] = m[0] >> 2;
  output_i(m[1]);
}
)";
  const auto plan = inject::InjectionPlan::single(0, 1, 1);

  // Naive taint: flags the location even though the value is correct.
  const TaintRun naive = run_taint(src, plan);
  EXPECT_EQ(naive.outputs[0], 4.0);
  EXPECT_GE(naive.taint_final, 1u) << "taint cannot observe masking";

  // Dual chain: proves the store matched its pristine value.
  ir::Module m = minic::compile(src);
  (void)passes::instrument_module(m);
  inject::InjectorRuntime inj(plan);
  fpm::FpmRuntime fpm;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_fpm(&fpm);
  ASSERT_EQ(vm.run(1u << 20), vm::RunState::Done);
  EXPECT_EQ(fpm.shadow().peak(), 0u);
}

TEST(TaintMode, FlowsThroughFunctionCalls) {
  const TaintRun r = run_taint(R"(
fn square(x: float) -> float { return x * x; }
fn main() {
  var a: float* = alloc_float(2);
  var v: float = 1.5;
  a[0] = v + 0.5;          // injection lands on v here (dyn 0)
  a[1] = square(a[0]);     // taint must survive the call
  output_f(a[1]);
}
)",
                               inject::InjectionPlan::single(0, 0, 40));
  EXPECT_GE(r.taint_peak, 2u);  // both a[0] and a[1]
}

TEST(TaintMode, OverwriteWithCleanValueClears) {
  const TaintRun r = run_taint(R"(
fn main() {
  var a: float* = alloc_float(1);
  var v: float = 1.5;
  a[0] = v * 2.0;    // tainted by the injected flip (dyn 0)
  a[0] = 7.0;        // clean constant store clears the word
  output_f(a[0]);
}
)",
                               inject::InjectionPlan::single(0, 0, 30));
  EXPECT_GE(r.taint_peak, 1u);
  EXPECT_EQ(r.taint_final, 0u);
  EXPECT_EQ(r.outputs[0], 7.0);
}

TEST(TaintMode, LoadsPickUpLocationTaint) {
  const TaintRun r = run_taint(R"(
fn main() {
  var a: float* = alloc_float(3);
  var v: float = 1.0;
  a[0] = v + 1.0;        // tainted store (dyn 0)
  a[1] = a[0] * 3.0;     // load of tainted word -> tainted result
  a[2] = a[1] + 1.0;
  output_f(a[2]);
}
)",
                               inject::InjectionPlan::single(0, 0, 20));
  EXPECT_GE(r.taint_peak, 3u);
}

}  // namespace
}  // namespace fprop
