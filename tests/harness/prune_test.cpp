#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/harness/prune.h"

// Early-outcome pruning (DESIGN.md §14) equivalence suite: a pruned+deduped
// campaign must be trial-for-trial bit-identical to the unpruned one — the
// probe's full-state comparison makes the synthesized results exact by
// construction, and these tests pin that construction against every registry
// app, worker count, start mode and the recovery loop. The provenance
// fields (pruned / prune_clock / dedup_count) are the ONLY permitted
// differences.

namespace fprop::harness {
namespace {

void expect_trials_equal(const TrialResult& x, const TrialResult& y,
                         std::size_t i) {
  EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
  EXPECT_EQ(x.trap, y.trap) << "trial " << i;
  EXPECT_EQ(x.injected, y.injected) << "trial " << i;
  EXPECT_EQ(x.injection.rank, y.injection.rank) << "trial " << i;
  EXPECT_EQ(x.injection.site_id, y.injection.site_id) << "trial " << i;
  EXPECT_EQ(x.injection.dyn_index, y.injection.dyn_index) << "trial " << i;
  EXPECT_EQ(x.injection.bit, y.injection.bit) << "trial " << i;
  EXPECT_EQ(x.injection.cycle, y.injection.cycle) << "trial " << i;
  EXPECT_EQ(x.injection.before, y.injection.before) << "trial " << i;
  EXPECT_EQ(x.injection.after, y.injection.after) << "trial " << i;
  EXPECT_EQ(x.msg_injected, y.msg_injected) << "trial " << i;
  EXPECT_EQ(x.headers_quarantined, y.headers_quarantined) << "trial " << i;
  EXPECT_EQ(x.header_records_quarantined, y.header_records_quarantined)
      << "trial " << i;
  EXPECT_EQ(x.fault_pair_min_gap, y.fault_pair_min_gap) << "trial " << i;
  EXPECT_EQ(x.total_cml_final, y.total_cml_final) << "trial " << i;
  EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
  EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
  EXPECT_EQ(x.contaminated_ranks, y.contaminated_ranks) << "trial " << i;
  EXPECT_EQ(x.reported_iters, y.reported_iters) << "trial " << i;
  EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
  EXPECT_EQ(x.recovered, y.recovered) << "trial " << i;
  EXPECT_EQ(x.rollbacks, y.rollbacks) << "trial " << i;
  EXPECT_EQ(x.detections, y.detections) << "trial " << i;
  EXPECT_EQ(x.wasted_cycles, y.wasted_cycles) << "trial " << i;
  EXPECT_EQ(x.residual_cml, y.residual_cml) << "trial " << i;
  EXPECT_EQ(x.recovery_gave_up, y.recovery_gave_up) << "trial " << i;
  EXPECT_EQ(x.first_detection_clock, y.first_detection_clock)
      << "trial " << i;
}

void expect_campaigns_equal(const CampaignResult& base,
                            const CampaignResult& pruned) {
  ASSERT_EQ(base.trials.size(), pruned.trials.size());
  for (std::size_t i = 0; i < base.trials.size(); ++i) {
    expect_trials_equal(base.trials[i], pruned.trials[i], i);
  }
  EXPECT_EQ(base.counts.vanished, pruned.counts.vanished);
  EXPECT_EQ(base.counts.ona, pruned.counts.ona);
  EXPECT_EQ(base.counts.wrong_output, pruned.counts.wrong_output);
  EXPECT_EQ(base.counts.pex, pruned.counts.pex);
  EXPECT_EQ(base.counts.crashed, pruned.counts.crashed);
  EXPECT_EQ(base.max_contaminated_pct, pruned.max_contaminated_pct);
  EXPECT_EQ(base.recovered_trials, pruned.recovered_trials);
  EXPECT_EQ(base.total_rollbacks, pruned.total_rollbacks);
  EXPECT_EQ(base.total_wasted_cycles, pruned.total_wasted_cycles);
  EXPECT_EQ(base.total_msg_injected, pruned.total_msg_injected);
  EXPECT_EQ(base.total_headers_quarantined,
            pruned.total_headers_quarantined);
}

/// Pruned-result invariants that hold by the soundness argument: a pruned
/// trial reconverged to the golden run, so it cannot have crashed, produced
/// wrong output, run long, or kept live shadow entries; and dedup_count is a
/// partition of the trial count.
void expect_economy_invariants(const CampaignResult& r, std::size_t trials) {
  std::uint64_t dedup_sum = 0;
  std::size_t dedup_zero = 0;
  for (const TrialResult& t : r.trials) {
    dedup_sum += t.dedup_count;
    if (t.dedup_count == 0) ++dedup_zero;
    if (t.pruned) {
      EXPECT_TRUE(t.outcome == Outcome::Vanished ||
                  t.outcome == Outcome::OutputNotAffected)
          << outcome_name(t.outcome);
      EXPECT_EQ(t.trap, vm::Trap::None);
      EXPECT_EQ(t.total_cml_final, 0u);  // live shadow entries forbid pruning
      EXPECT_GT(t.prune_clock, 0u);
      EXPECT_LT(t.prune_clock, t.global_cycles);
    } else {
      EXPECT_EQ(t.prune_clock, 0u);
    }
  }
  EXPECT_EQ(dedup_sum, trials);
  EXPECT_EQ(dedup_zero, r.deduped_trials);
}

CampaignConfig base_config(std::size_t trials = 30) {
  CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 42;
  cc.jobs = 1;
  cc.prune = false;
  cc.dedup = false;
  return cc;
}

class PruneEquivalence : public ::testing::TestWithParam<const char*> {};

// Pruned+deduped campaigns reproduce the unpruned baseline trial-for-trial
// at jobs ∈ {1, 8} and from both warm and cold starts.
TEST_P(PruneEquivalence, MatchesUnprunedAtAnyJobsAndStartMode) {
  ExperimentConfig cfg;
  AppHarness h(apps::get_app(GetParam()), cfg);
  const CampaignResult base = run_campaign(h, base_config());
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    for (const bool warm : {true, false}) {
      CampaignConfig cc = base_config();
      cc.prune = true;
      cc.dedup = true;
      cc.jobs = jobs;
      cc.warm_start = warm;
      const CampaignResult pruned = run_campaign(h, cc);
      expect_campaigns_equal(base, pruned);
      expect_economy_invariants(pruned, cc.trials);
    }
  }
}

// Same contract through the recovery loop (early_stop at clean detector
// scans instead of the plain sweep probe).
TEST_P(PruneEquivalence, MatchesUnprunedUnderRecovery) {
  ExperimentConfig cfg;
  cfg.recovery.enabled = true;
  AppHarness h(apps::get_app(GetParam()), cfg);
  const CampaignResult base = run_campaign(h, base_config());
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    CampaignConfig cc = base_config();
    cc.prune = true;
    cc.dedup = true;
    cc.jobs = jobs;
    const CampaignResult pruned = run_campaign(h, cc);
    expect_campaigns_equal(base, pruned);
    expect_economy_invariants(pruned, cc.trials);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, PruneEquivalence,
                         ::testing::Values("matvec", "lulesh", "amg",
                                           "minife", "lammps", "mcb"),
                         [](const auto& pi) { return std::string(pi.param); });

// The probe must actually fire on the workhorse app — a suite that passes
// because pruning never happens would be vacuous.
TEST(Prune, FiresOnMatvec) {
  ExperimentConfig cfg;
  AppHarness h(apps::get_app("matvec"), cfg);
  CampaignConfig cc = base_config();
  cc.prune = true;
  cc.dedup = true;
  const CampaignResult r = run_campaign(h, cc);
  EXPECT_GT(r.pruned_trials, 0u);
}

// Multi-fault (k=4) and in-flight message-fault campaigns: a pending later
// fault is future divergence, so the probe must hold fire until the whole
// plan has fired — checked here end-to-end by bit-equality to the unpruned
// baseline (an early prune would erase the later faults' effects).
TEST(Prune, MultiFaultAndMsgFaultCampaignsMatchUnpruned) {
  ExperimentConfig cfg;
  AppHarness h(apps::get_app("mcb"), cfg);
  CampaignConfig cc = base_config();
  cc.faults_per_run = 4;
  cc.msg_faults_per_run = 1;
  const CampaignResult base = run_campaign(h, cc);
  cc.prune = true;
  cc.dedup = true;
  cc.jobs = 8;
  const CampaignResult pruned = run_campaign(h, cc);
  expect_campaigns_equal(base, pruned);
  expect_economy_invariants(pruned, cc.trials);
}

// Directed must-not-prune: a plan whose second fault sits at the very last
// dynamic point of a rank. If the probe pruned after the first (vanishing)
// strike, the second would never fire and the results would diverge.
TEST(Prune, PendingLastFaultBlocksPruningUntilItFires) {
  ExperimentConfig cfg;
  AppHarness h(apps::get_app("matvec"), cfg);
  const inject::DynCounts& counts = h.golden().dyn_counts;
  ASSERT_FALSE(counts.empty());
  ASSERT_GT(counts[0], 1u);
  inject::InjectionPlan plan;
  plan.faults_by_rank[0] = {{0, 62}, {counts[0] - 1, 62}};

  TrialOptions opts;
  opts.prune = false;
  const TrialResult base = h.run_trial(plan, opts);
  opts.prune = true;
  const TrialResult pruned = h.run_trial(plan, opts);
  expect_trials_equal(base, pruned, 0);
  if (pruned.pruned) {
    // Legal only after the last fault: its strike cycle is a lower bound on
    // the rank-0 clock, hence on the global clock the prune matched at.
    EXPECT_GT(pruned.prune_clock, base.injection.cycle);
  }
}

// The exact configuration bench/perf_prune.cpp claims its headline speedup
// on: campaign-scale matvec (ITERS=1200) with a dense 96-rung ladder. The
// speedup number is only meaningful if this config is bit-identical too.
TEST(Prune, BenchConfigurationMatchesUnpruned) {
  ExperimentConfig cfg;
  cfg.overrides = {{"ITERS", "1200"}};
  cfg.snapshot_rungs = 96;
  AppHarness h(apps::get_app("matvec"), cfg);
  CampaignConfig cc = base_config(64);
  const CampaignResult base = run_campaign(h, cc);
  cc.prune = true;
  cc.dedup = true;
  const CampaignResult pruned = run_campaign(h, cc);
  expect_campaigns_equal(base, pruned);
  expect_economy_invariants(pruned, cc.trials);
  EXPECT_GT(pruned.pruned_trials, 0u);
}

// Directed: a trial that ends with live shadow entries (cml_final > 0) can
// never be pruned, whatever its outcome class.
TEST(Prune, LiveShadowEntriesAreNeverPruned) {
  ExperimentConfig cfg;
  AppHarness h(apps::get_app("matvec"), cfg);
  CampaignConfig cc = base_config();
  cc.prune = true;
  const CampaignResult r = run_campaign(h, cc);
  bool saw_live_shadow = false;
  for (const TrialResult& t : r.trials) {
    if (t.total_cml_final > 0) {
      saw_live_shadow = true;
      EXPECT_FALSE(t.pruned);
    }
  }
  EXPECT_TRUE(saw_live_shadow);  // the frozen seed produces such trials
}

}  // namespace
}  // namespace fprop::harness
