// The parallel campaign engine's contract: a CampaignResult is bit-identical
// at any jobs value. Plans are pre-sampled from derive_seed(seed, i), every
// trial is a pure function of its plan, and the merge runs strictly in
// trial-index order — so serial vs jobs={2,8} must agree on every counter,
// every per-trial field, every slope and every kept trace.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

namespace fprop::harness {
namespace {

AppHarness make_harness(const std::string& app, std::uint32_t nranks,
                        bool recovery = false) {
  ExperimentConfig cfg;
  cfg.nranks = nranks;
  if (app == "matvec") cfg.overrides = {{"ITERS", "6"}};
  if (recovery) {
    cfg.recovery.enabled = true;
    cfg.recovery.max_rollbacks = 2;
  }
  return AppHarness(apps::get_app(app), cfg);
}

CampaignConfig campaign_config(std::size_t trials, std::size_t jobs,
                               bool capture) {
  CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 1234;
  cc.capture_traces = capture;
  cc.max_kept_traces = 4;
  cc.jobs = jobs;
  return cc;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  // Aggregate outcome counts (the Fig. 6 row).
  EXPECT_EQ(a.counts.vanished, b.counts.vanished);
  EXPECT_EQ(a.counts.ona, b.counts.ona);
  EXPECT_EQ(a.counts.wrong_output, b.counts.wrong_output);
  EXPECT_EQ(a.counts.pex, b.counts.pex);
  EXPECT_EQ(a.counts.crashed, b.counts.crashed);

  // Recovery aggregates.
  EXPECT_EQ(a.recovered_trials, b.recovered_trials);
  EXPECT_EQ(a.total_rollbacks, b.total_rollbacks);
  EXPECT_EQ(a.total_wasted_cycles, b.total_wasted_cycles);

  // Propagation slopes, bit-for-bit (same fits folded in the same order).
  ASSERT_EQ(a.slopes.size(), b.slopes.size());
  for (std::size_t i = 0; i < a.slopes.size(); ++i) {
    EXPECT_EQ(a.slopes[i], b.slopes[i]) << "slope " << i;
  }
  ASSERT_EQ(a.max_contaminated_pct.size(), b.max_contaminated_pct.size());
  for (std::size_t i = 0; i < a.max_contaminated_pct.size(); ++i) {
    EXPECT_EQ(a.max_contaminated_pct[i], b.max_contaminated_pct[i])
        << "max_contaminated_pct " << i;
  }

  // Per-trial results, including which trials kept their traces.
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    const TrialResult& x = a.trials[i];
    const TrialResult& y = b.trials[i];
    EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
    EXPECT_EQ(x.trap, y.trap) << "trial " << i;
    EXPECT_EQ(x.injected, y.injected) << "trial " << i;
    EXPECT_EQ(x.total_cml_final, y.total_cml_final) << "trial " << i;
    EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
    EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
    EXPECT_EQ(x.contaminated_ranks, y.contaminated_ranks) << "trial " << i;
    EXPECT_EQ(x.reported_iters, y.reported_iters) << "trial " << i;
    EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
    EXPECT_EQ(x.recovered, y.recovered) << "trial " << i;
    EXPECT_EQ(x.rollbacks, y.rollbacks) << "trial " << i;
    EXPECT_EQ(x.detections, y.detections) << "trial " << i;
    EXPECT_EQ(x.wasted_cycles, y.wasted_cycles) << "trial " << i;
    EXPECT_EQ(x.residual_cml, y.residual_cml) << "trial " << i;
    ASSERT_EQ(x.trace.size(), y.trace.size()) << "trial " << i;
    for (std::size_t s = 0; s < x.trace.size(); ++s) {
      EXPECT_EQ(x.trace[s].cycle, y.trace[s].cycle)
          << "trial " << i << " sample " << s;
      EXPECT_EQ(x.trace[s].cml, y.trace[s].cml)
          << "trial " << i << " sample " << s;
    }
  }
}

TEST(ParallelCampaign, MatvecMatchesSerialWithTraces) {
  AppHarness h = make_harness("matvec", 1);
  const CampaignResult serial =
      run_campaign(h, campaign_config(48, 1, /*capture=*/true));
  // Sanity: the campaign actually exercises multiple outcome classes and
  // keeps exactly max_kept_traces traces (the first 4 trials).
  EXPECT_EQ(serial.counts.total(), 48u);
  std::size_t kept = 0;
  for (const TrialResult& t : serial.trials) kept += !t.trace.empty();
  EXPECT_LE(kept, 4u);

  for (std::size_t jobs : {2u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const CampaignResult par =
        run_campaign(h, campaign_config(48, jobs, /*capture=*/true));
    expect_identical(serial, par);
  }
}

TEST(ParallelCampaign, MatvecRecoveryAggregatesMatchSerial) {
  AppHarness h = make_harness("matvec", 1, /*recovery=*/true);
  const CampaignResult serial =
      run_campaign(h, campaign_config(32, 1, /*capture=*/false));
  EXPECT_EQ(serial.counts.total(), 32u);

  for (std::size_t jobs : {2u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const CampaignResult par =
        run_campaign(h, campaign_config(32, jobs, /*capture=*/false));
    expect_identical(serial, par);
  }
}

TEST(ParallelCampaign, MultiRankLuleshMatchesSerial) {
  // A second, multi-rank app: cross-rank propagation through MPI messages.
  AppHarness h = make_harness("lulesh", 4);
  const CampaignResult serial =
      run_campaign(h, campaign_config(12, 1, /*capture=*/true));
  EXPECT_EQ(serial.counts.total(), 12u);

  const CampaignResult par =
      run_campaign(h, campaign_config(12, 8, /*capture=*/true));
  expect_identical(serial, par);
}

TEST(ParallelCampaign, JobsZeroMeansAutoAndStaysDeterministic) {
  AppHarness h = make_harness("matvec", 1);
  const CampaignResult serial =
      run_campaign(h, campaign_config(16, 1, /*capture=*/false));
  const CampaignResult auto_jobs =
      run_campaign(h, campaign_config(16, 0, /*capture=*/false));
  expect_identical(serial, auto_jobs);
}

TEST(ParallelCampaign, MoreJobsThanTrials) {
  AppHarness h = make_harness("matvec", 1);
  const CampaignResult serial =
      run_campaign(h, campaign_config(3, 1, /*capture=*/false));
  const CampaignResult par =
      run_campaign(h, campaign_config(3, 8, /*capture=*/false));
  expect_identical(serial, par);
}

TEST(ParallelCampaign, TracingLeavesResultsBitIdentical) {
  // The observability contract (DESIGN.md §8): attaching a recorder and a
  // metrics registry observes the campaign without feeding back — every
  // TrialResult field stays bit-identical to the untraced run.
  AppHarness h = make_harness("matvec", 1, /*recovery=*/true);
  const CampaignResult plain =
      run_campaign(h, campaign_config(24, 2, /*capture=*/true));

  CampaignConfig traced = campaign_config(24, 2, /*capture=*/true);
  traced.trace_dir = ::testing::TempDir() + "fprop_campaign_traced";
  obs::MetricsRegistry reg;
  traced.metrics = &reg;
  const CampaignResult with_obs = run_campaign(h, traced);

  expect_identical(plain, with_obs);
  EXPECT_EQ(reg.snapshot().counters.at("campaign.trials"), 24u);
}

TEST(ParallelCampaign, WarmStartIsBitIdenticalToColdAtAnyJobsCount) {
  // The warm-start contract (DESIGN.md §11): trials resumed from golden
  // snapshot rungs are trial-for-trial bit-identical to cold starts, with
  // and without recovery, at any jobs value.
  for (const bool recovery : {false, true}) {
    SCOPED_TRACE(recovery ? "recovery" : "plain");
    ExperimentConfig cfg;
    cfg.nranks = 1;
    cfg.overrides = {{"ITERS", "6"}};
    if (recovery) {
      cfg.recovery.enabled = true;
      cfg.recovery.max_rollbacks = 2;
      // Derive the scan grid from the golden run so mid-run checkpoints
      // (and therefore recovery-aligned ladder rungs) actually exist.
      cfg.recovery.detector_interval = 0;
    }
    AppHarness h(apps::get_app("matvec"), cfg);
    if (recovery) {
      EXPECT_FALSE(h.snapshot_ladder().empty());
    }

    CampaignConfig cold_cc = campaign_config(32, 1, /*capture=*/!recovery);
    cold_cc.warm_start = false;
    const CampaignResult cold = run_campaign(h, cold_cc);
    EXPECT_EQ(cold.counts.total(), 32u);

    for (std::size_t jobs : {1u, 8u}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      CampaignConfig warm_cc =
          campaign_config(32, jobs, /*capture=*/!recovery);
      warm_cc.warm_start = true;
      const CampaignResult warm = run_campaign(h, warm_cc);
      expect_identical(cold, warm);
    }
  }
}

TEST(ParallelCampaign, WarmStartActuallySkipsPrefixCycles) {
  // Guard against the warm path silently degrading to cold: the ladder must
  // exist, and at least one sampled trial must have a usable rung (i.e. the
  // fault does not land before the first rung on every trial).
  AppHarness h = make_harness("matvec", 1);
  EXPECT_FALSE(h.snapshot_ladder().empty());
  std::size_t usable = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    Xoshiro256 rng(derive_seed(1234, i));
    const inject::InjectionPlan plan = inject::sample_faults(
        h.golden().dyn_counts, h.golden().dyn_widths, 1, rng);
    const std::uint64_t first_rung_count =
        h.snapshot_ladder().front().dyn_counts[0];
    for (const auto& [rank, faults] : plan.faults_by_rank) {
      for (const auto& f : faults) {
        usable += f.dyn_index >= first_rung_count;
      }
    }
  }
  EXPECT_GT(usable, 0u);
}

TEST(ParallelCampaign, MetricsFoldIdenticallyAtAnyJobsCount) {
  // Registry updates are commutative, so the folded snapshot is a pure
  // function of the trial set — jobs=1 and jobs=8 must agree exactly.
  AppHarness h = make_harness("matvec", 1, /*recovery=*/true);

  obs::MetricsRegistry serial_reg;
  CampaignConfig serial_cc = campaign_config(24, 1, /*capture=*/false);
  serial_cc.metrics = &serial_reg;
  run_campaign(h, serial_cc);

  obs::MetricsRegistry par_reg;
  CampaignConfig par_cc = campaign_config(24, 8, /*capture=*/false);
  par_cc.metrics = &par_reg;
  run_campaign(h, par_cc);

  const obs::MetricsSnapshot a = serial_reg.snapshot();
  EXPECT_EQ(a, par_reg.snapshot());

  // The fold actually recorded something on every axis it claims to cover.
  EXPECT_EQ(a.counters.at("campaign.trials"), 24u);
  EXPECT_GT(a.counters.at("inject.flips"), 0u);
#if FPROP_OBS_ENABLED
  EXPECT_GT(a.counters.at("obs.events"), 0u);
#endif
  EXPECT_GT(a.histograms.at("shadow.probe_len").count, 0u);
}

}  // namespace
}  // namespace fprop::harness
