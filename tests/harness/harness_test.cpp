#include <gtest/gtest.h>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

namespace fprop::harness {
namespace {

AppHarness matvec_harness(int iters = 6) {
  ExperimentConfig cfg;
  cfg.nranks = 1;
  cfg.overrides = {{"ITERS", std::to_string(iters)}};
  return AppHarness(apps::get_app("matvec"), cfg);
}

TEST(OutcomeNames, Stable) {
  EXPECT_STREQ(outcome_name(Outcome::Vanished), "V");
  EXPECT_STREQ(outcome_name(Outcome::OutputNotAffected), "ONA");
  EXPECT_STREQ(outcome_name(Outcome::WrongOutput), "WO");
  EXPECT_STREQ(outcome_name(Outcome::ProlongedExecution), "PEX");
  EXPECT_STREQ(outcome_name(Outcome::Crashed), "C");
}

TEST(OutcomeCounts, Percentages) {
  OutcomeCounts c;
  c.vanished = 1;
  c.ona = 3;
  c.wrong_output = 4;
  c.pex = 0;
  c.crashed = 2;
  EXPECT_EQ(c.total(), 10u);
  EXPECT_EQ(c.correct_output(), 4u);
  EXPECT_DOUBLE_EQ(c.pct(c.crashed), 20.0);
  EXPECT_DOUBLE_EQ(OutcomeCounts{}.pct(0), 0.0);
}

TEST(AppHarness, GoldenDoublesAsProfilingRun) {
  AppHarness h = matvec_harness();
  EXPECT_EQ(h.golden().dyn_counts.size(), 1u);
  EXPECT_EQ(h.golden().dyn_counts[0], h.golden().total_dyn_points);
  EXPECT_GT(h.golden().total_dyn_points, 100u);
  EXPECT_FALSE(h.sites().empty());
  EXPECT_EQ(h.app_name(), "matvec");
  EXPECT_EQ(h.nranks(), 1u);
}

TEST(AppHarness, TrialDeterminism) {
  AppHarness h = matvec_harness();
  const auto plan = inject::InjectionPlan::single(0, 42, 13);
  const TrialResult a = h.run_trial(plan, true);
  const TrialResult b = h.run_trial(plan, true);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.total_cml_peak, b.total_cml_peak);
  EXPECT_EQ(a.global_cycles, b.global_cycles);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cml, b.trace[i].cml);
  }
}

TEST(AppHarness, NonFiringPlanIsVanished) {
  AppHarness h = matvec_harness();
  const auto plan =
      inject::InjectionPlan::single(0, h.golden().total_dyn_points + 1, 0);
  const TrialResult t = h.run_trial(plan);
  EXPECT_FALSE(t.injected);
  EXPECT_EQ(t.outcome, Outcome::Vanished);
}

TEST(AppHarness, HighBitFlipCorruptsOutput) {
  AppHarness h = matvec_harness();
  // Sweep high-bit (62) flips over the early dynamic points: at least one
  // must corrupt the output or crash (exploded values / wild indices), and
  // not every run can stay correct.
  bool saw_bad = false;
  for (std::uint64_t dyn = 0; dyn < 30; ++dyn) {
    const TrialResult t =
        h.run_trial(inject::InjectionPlan::single(0, dyn, 62));
    if (!t.injected) break;
    if (t.outcome == Outcome::WrongOutput || t.outcome == Outcome::Crashed) {
      saw_bad = true;
      break;
    }
  }
  EXPECT_TRUE(saw_bad);
}

TEST(AppHarness, LowMantissaFlipIsToleratedButTracked) {
  AppHarness h = matvec_harness(3);
  // Sweep low-bit flips until one lands on a float operand: output shifts
  // by far less than 5% but the memory state is contaminated (paper: ONA,
  // invisible to black-box analysis).
  for (std::uint64_t dyn = 0; dyn < h.golden().total_dyn_points; ++dyn) {
    const TrialResult t = h.run_trial(inject::InjectionPlan::single(0, dyn, 0));
    if (t.outcome == Outcome::OutputNotAffected) {
      EXPECT_GT(t.total_cml_peak, 0u);
      return;
    }
  }
  FAIL() << "no ONA trial found in a full sweep";
}

TEST(AppHarness, TraceCaptureOnlyWhenRequested) {
  AppHarness h = matvec_harness();
  const auto plan = inject::InjectionPlan::single(0, 10, 5);
  EXPECT_TRUE(h.run_trial(plan, false).trace.empty());
  EXPECT_FALSE(h.run_trial(plan, true).trace.empty());
  EXPECT_EQ(h.run_trial(plan, true).rank_first_contaminated.size(), 1u);
}

TEST(Campaign, CountsAddUp) {
  AppHarness h = matvec_harness();
  CampaignConfig cc;
  cc.trials = 40;
  cc.seed = 7;
  const CampaignResult r = run_campaign(h, cc);
  EXPECT_EQ(r.counts.total(), 40u);
  EXPECT_EQ(r.trials.size(), 40u);
  EXPECT_EQ(r.max_contaminated_pct.size(), 40u);
}

TEST(Campaign, DeterministicForSeed) {
  AppHarness h = matvec_harness();
  CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 99;
  const CampaignResult a = run_campaign(h, cc);
  const CampaignResult b = run_campaign(h, cc);
  EXPECT_EQ(a.counts.vanished, b.counts.vanished);
  EXPECT_EQ(a.counts.ona, b.counts.ona);
  EXPECT_EQ(a.counts.wrong_output, b.counts.wrong_output);
  EXPECT_EQ(a.counts.crashed, b.counts.crashed);
}

TEST(Campaign, SeedChangesOutcomeMix) {
  AppHarness h = matvec_harness();
  CampaignConfig a;
  a.trials = 30;
  a.seed = 1;
  CampaignConfig b = a;
  b.seed = 2;
  const auto ra = run_campaign(h, a);
  const auto rb = run_campaign(h, b);
  bool differs = false;
  for (std::size_t i = 0; i < ra.trials.size(); ++i) {
    if (ra.trials[i].injection.site_id != rb.trials[i].injection.site_id ||
        ra.trials[i].injection.bit != rb.trials[i].injection.bit) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Campaign, TraceBudgetRespected) {
  AppHarness h = matvec_harness();
  CampaignConfig cc;
  cc.trials = 20;
  cc.capture_traces = true;
  cc.max_kept_traces = 3;
  const CampaignResult r = run_campaign(h, cc);
  std::size_t kept = 0;
  for (const auto& t : r.trials) {
    if (!t.trace.empty()) ++kept;
  }
  EXPECT_LE(kept, 3u);
}

TEST(Campaign, MultiFaultRunsInjectMore) {
  AppHarness h = matvec_harness();
  CampaignConfig cc;
  cc.trials = 10;
  cc.faults_per_run = 4;  // LLFI++ multi-fault extension
  const CampaignResult r = run_campaign(h, cc);
  EXPECT_EQ(r.counts.total(), 10u);
  // Multi-fault campaigns are at least as destructive as single-fault.
  CampaignConfig one = cc;
  one.faults_per_run = 1;
  const CampaignResult r1 = run_campaign(h, one);
  EXPECT_GE(r.counts.total() - r.counts.correct_output(),
            r1.counts.total() - r1.counts.correct_output());
}

TEST(SiteBreakdown, FoldsCampaignPerSite) {
  AppHarness h = matvec_harness();
  CampaignConfig cc;
  cc.trials = 60;
  const CampaignResult r = run_campaign(h, cc);
  const auto sites = site_breakdown(h, r);
  ASSERT_FALSE(sites.empty());
  // Totals add up to the injected trials.
  std::size_t total = 0;
  for (const auto& s : sites) {
    total += s.counts.total();
    EXPECT_GE(s.site_id, 0);
    EXPECT_FALSE(s.consumer.empty());
    EXPECT_LE(s.severity(), 1.0);
  }
  std::size_t injected = 0;
  for (const auto& t : r.trials) {
    if (t.injected) ++injected;
  }
  EXPECT_EQ(total, injected);
  // Sorted most severe first.
  for (std::size_t i = 1; i < sites.size(); ++i) {
    EXPECT_GE(sites[i - 1].severity(), sites[i].severity());
  }
}

TEST(Campaign, MessageFaultCampaignClassifiesEveryTrial) {
  // Pure message-corruption campaign (faults_per_run = 0): every trial is
  // classified, the golden send counts give a nonempty sampling space, and
  // the quarantine aggregates stay internally consistent.
  ExperimentConfig cfg;
  AppHarness h(apps::get_app("lulesh"), cfg);
  ASSERT_GT(h.golden().total_sent_msgs, 0u);
  CampaignConfig cc;
  cc.trials = 16;
  cc.seed = 13;
  cc.faults_per_run = 0;
  cc.msg_faults_per_run = 2;
  const CampaignResult r = run_campaign(h, cc);
  EXPECT_EQ(r.counts.total(), cc.trials);
  EXPECT_GT(r.total_msg_injected, 0u);
  // Only header strikes can quarantine, and a quarantined header implies at
  // least one record quarantined (or a malformed stream with zero records).
  EXPECT_GE(r.total_header_records_quarantined, 0u);
  std::size_t msg_sum = 0;
  std::uint64_t q_sum = 0;
  for (const auto& t : r.trials) {
    msg_sum += t.msg_injected;
    q_sum += t.headers_quarantined;
  }
  EXPECT_EQ(msg_sum, r.total_msg_injected);
  EXPECT_EQ(q_sum, r.total_headers_quarantined);
}

TEST(Campaign, MsgFaultsIgnoredOnCommunicationFreeApps) {
  // matvec at nranks = 1 never sends: msg_faults_per_run must degrade to a
  // no-op, not crash or skew the register-fault stream.
  AppHarness h = matvec_harness();
  ASSERT_EQ(h.golden().total_sent_msgs, 0u);
  CampaignConfig cc;
  cc.trials = 10;
  cc.seed = 21;
  const CampaignResult plain = run_campaign(h, cc);
  cc.msg_faults_per_run = 3;
  const CampaignResult with = run_campaign(h, cc);
  EXPECT_EQ(with.total_msg_injected, 0u);
  ASSERT_EQ(with.trials.size(), plain.trials.size());
  for (std::size_t i = 0; i < with.trials.size(); ++i) {
    EXPECT_EQ(with.trials[i].outcome, plain.trials[i].outcome) << i;
    EXPECT_EQ(with.trials[i].global_cycles, plain.trials[i].global_cycles)
        << i;
  }
}

TEST(Campaign, InterferenceGapPopulatedForMultiFaultTrials) {
  AppHarness h = matvec_harness();
  CampaignConfig cc;
  cc.trials = 20;
  cc.seed = 5;
  cc.faults_per_run = 4;
  const CampaignResult r = run_campaign(h, cc);
  bool any_gap = false;
  for (const auto& t : r.trials) {
    if (t.fault_pair_min_gap >= 0) any_gap = true;
  }
  EXPECT_TRUE(any_gap);  // 4 faults per trial: some trial fired >= 2
  // Single-fault trials can never report a pair distance.
  CampaignConfig one = cc;
  one.faults_per_run = 1;
  const CampaignResult r1 = run_campaign(h, one);
  for (const auto& t : r1.trials) {
    EXPECT_EQ(t.fault_pair_min_gap, -1);
  }
}

TEST(Classifier, GoldenEquivalentJobIsCorrectOutput) {
  // Classification of a fault-free job result: everything matches golden.
  AppHarness h = matvec_harness();
  const auto plan =
      inject::InjectionPlan::single(0, h.golden().total_dyn_points + 1, 0);
  const TrialResult t = h.run_trial(plan);
  EXPECT_EQ(t.outcome, Outcome::Vanished);
  EXPECT_EQ(t.trap, vm::Trap::None);
}

TEST(Classifier, MpiAppClassification) {
  // A small multi-rank campaign on lulesh must only produce valid outcomes
  // and plausible aggregates.
  ExperimentConfig cfg;
  AppHarness h(apps::get_app("lulesh"), cfg);
  CampaignConfig cc;
  cc.trials = 12;
  const CampaignResult r = run_campaign(h, cc);
  EXPECT_EQ(r.counts.total(), 12u);
  for (const auto& t : r.trials) {
    if (t.outcome == Outcome::Crashed) {
      EXPECT_NE(t.trap, vm::Trap::None);
    } else {
      EXPECT_EQ(t.trap, vm::Trap::None);
    }
    EXPECT_LE(t.contaminated_ranks, 8u);
  }
}

}  // namespace
}  // namespace fprop::harness
