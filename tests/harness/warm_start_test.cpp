#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/inject/injector.h"
#include "fprop/mpisim/world.h"

// Snapshot-ladder property tests (DESIGN.md §11).
//
// The warm-start bit-identity contract rests on one mechanism property:
// restoring any golden-ladder rung into a fresh World and running to
// completion reproduces the uninterrupted golden run bit-for-bit. The
// campaign-level warm-vs-cold tests (golden_test, parallel_campaign_test)
// then only need the harness to pick a *usable* rung; equivalence of the
// restored execution itself is pinned here, at every rung of every
// registry app.

namespace fprop::harness {
namespace {

constexpr const char* kApps[] = {"matvec", "lulesh", "amg",
                                 "minife", "lammps", "mcb"};

void expect_same_job(const mpisim::JobResult& a, const mpisim::JobResult& b) {
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.first_trap, b.first_trap);
  EXPECT_EQ(a.first_trap_rank, b.first_trap_rank);
  EXPECT_EQ(a.global_cycles, b.global_cycles);
  EXPECT_EQ(a.max_rank_cycles, b.max_rank_cycles);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const mpisim::RankResult& x = a.ranks[r];
    const mpisim::RankResult& y = b.ranks[r];
    EXPECT_EQ(x.state, y.state) << "rank " << r;
    EXPECT_EQ(x.trap, y.trap) << "rank " << r;
    EXPECT_EQ(x.cycles, y.cycles) << "rank " << r;
    EXPECT_EQ(x.outputs, y.outputs) << "rank " << r;
    EXPECT_EQ(x.reported_iters, y.reported_iters) << "rank " << r;
    EXPECT_EQ(x.allocated_words, y.allocated_words) << "rank " << r;
    EXPECT_EQ(x.cml_final, y.cml_final) << "rank " << r;
    EXPECT_EQ(x.cml_peak, y.cml_peak) << "rank " << r;
    EXPECT_EQ(x.first_contaminated_at, y.first_contaminated_at)
        << "rank " << r;
  }
}

class WarmStartApps : public ::testing::TestWithParam<const char*> {};

// Restoring at every rung of the ladder and running to completion must
// reproduce the uninterrupted run — JobResult and global CML trace alike.
TEST_P(WarmStartApps, EveryRungReplaysToTheSameJobResult) {
  ExperimentConfig cfg;
  const AppHarness h(apps::get_app(GetParam()), cfg);

  const std::vector<SnapshotRung>& ladder = h.snapshot_ladder();
  ASSERT_FALSE(ladder.empty());
  EXPECT_LE(ladder.size(), cfg.snapshot_rungs);

  const mpisim::WorldConfig wc = h.world_config(/*tracing=*/true);
  mpisim::World ref_world(h.module(), wc);
  inject::InjectorRuntime ref_probe;
  ref_world.set_inject_hook(&ref_probe);
  const mpisim::JobResult ref = ref_world.run();

  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const SnapshotRung& rung = ladder[i];
    if (i > 0) {
      EXPECT_GT(rung.global_clock, ladder[i - 1].global_clock);
      for (std::size_t r = 0; r < rung.dyn_counts.size(); ++r) {
        EXPECT_GE(rung.dyn_counts[r], ladder[i - 1].dyn_counts[r]);
      }
    }
    mpisim::World world(h.module(), wc);
    inject::InjectorRuntime probe;
    world.set_inject_hook(&probe);
    world.restore(rung.state);
    probe.fast_forward(rung.dyn_counts);
    const mpisim::JobResult job = world.run();
    SCOPED_TRACE("rung " + std::to_string(i) + " at clock " +
                 std::to_string(rung.global_clock));
    expect_same_job(ref, job);

    ASSERT_EQ(ref_world.global_trace().size(), world.global_trace().size());
    for (std::size_t s = 0; s < world.global_trace().size(); ++s) {
      EXPECT_EQ(ref_world.global_trace()[s].cycle,
                world.global_trace()[s].cycle);
      EXPECT_EQ(ref_world.global_trace()[s].cml, world.global_trace()[s].cml);
    }
    // The resumed injector continues the golden count exactly.
    EXPECT_EQ(probe.dynamic_counts(h.nranks()), h.golden().dyn_counts);
  }
}

// With recovery enabled, rungs must sit on the detector scan grid (that is
// what makes a warm RecoveryManager scan at the clocks a cold one would).
TEST(WarmStartLadder, RecoveryRungsSitOnTheScanGrid) {
  ExperimentConfig cfg;
  cfg.recovery.enabled = true;
  cfg.recovery.max_rollbacks = 2;
  // 0 = derive the scan grid from the golden run (golden/16) — matvec's
  // golden run is far shorter than the default absolute interval, which
  // would leave the grid (and the ladder) empty.
  cfg.recovery.detector_interval = 0;
  const AppHarness h(apps::get_app("matvec"), cfg);
  const std::uint64_t interval =
      std::max<std::uint64_t>(h.golden().global_cycles / 16, 1);
  const std::vector<SnapshotRung>& ladder = h.snapshot_ladder();
  ASSERT_FALSE(ladder.empty());
  for (const SnapshotRung& rung : ladder) {
    // Captured at the first sweep boundary at/after a grid point: the
    // previous grid point must be inside the sweep that ended at the rung.
    EXPECT_GE(rung.global_clock, interval);
  }
}

// snapshot_rungs = 0 disables the ladder; warm-start requests degrade to
// cold starts rather than failing.
TEST(WarmStartLadder, ZeroRungsDisablesWarmStart) {
  ExperimentConfig cfg;
  cfg.snapshot_rungs = 0;
  const AppHarness h(apps::get_app("matvec"), cfg);
  EXPECT_TRUE(h.snapshot_ladder().empty());

  CampaignConfig cc;
  cc.trials = 8;
  cc.seed = 7;
  cc.jobs = 1;
  cc.warm_start = true;
  const CampaignResult warm = run_campaign(h, cc);
  cc.warm_start = false;
  const CampaignResult cold = run_campaign(h, cc);
  ASSERT_EQ(warm.trials.size(), cold.trials.size());
  for (std::size_t i = 0; i < warm.trials.size(); ++i) {
    EXPECT_EQ(warm.trials[i].outcome, cold.trials[i].outcome) << i;
    EXPECT_EQ(warm.trials[i].global_cycles, cold.trials[i].global_cycles) << i;
  }
}

void expect_same_trial(const TrialResult& w, const TrialResult& c,
                       std::size_t i) {
  EXPECT_EQ(w.outcome, c.outcome) << "trial " << i;
  EXPECT_EQ(w.trap, c.trap) << "trial " << i;
  EXPECT_EQ(w.injected, c.injected) << "trial " << i;
  EXPECT_EQ(w.msg_injected, c.msg_injected) << "trial " << i;
  EXPECT_EQ(w.headers_quarantined, c.headers_quarantined) << "trial " << i;
  EXPECT_EQ(w.header_records_quarantined, c.header_records_quarantined)
      << "trial " << i;
  EXPECT_EQ(w.fault_pair_min_gap, c.fault_pair_min_gap) << "trial " << i;
  EXPECT_EQ(w.global_cycles, c.global_cycles) << "trial " << i;
  EXPECT_EQ(w.total_cml_final, c.total_cml_final) << "trial " << i;
  EXPECT_EQ(w.total_cml_peak, c.total_cml_peak) << "trial " << i;
  EXPECT_EQ(w.contaminated_ranks, c.contaminated_ranks) << "trial " << i;
}

// Multi-fault campaigns (k = 4 register faults + 1 in-flight message fault
// per trial) must stay bit-identical warm vs cold on every registry app:
// rung selection keys on the EARLIEST fault of the whole plan — register
// faults against rung.dyn_counts, message faults against the checkpointed
// per-rank send counters — so no fault can land in the skipped prefix.
TEST_P(WarmStartApps, MultiFaultCampaignWarmEqualsColdTrialForTrial) {
  ExperimentConfig cfg;
  const AppHarness h(apps::get_app(GetParam()), cfg);
  CampaignConfig cc;
  cc.trials = 24;
  cc.seed = 0xA11CE;
  cc.jobs = 1;
  cc.faults_per_run = 4;
  cc.msg_faults_per_run = h.golden().total_sent_msgs > 0 ? 1 : 0;
  cc.warm_start = true;
  const CampaignResult warm = run_campaign(h, cc);
  cc.warm_start = false;
  const CampaignResult cold = run_campaign(h, cc);
  ASSERT_EQ(warm.trials.size(), cold.trials.size());
  for (std::size_t i = 0; i < warm.trials.size(); ++i) {
    expect_same_trial(warm.trials[i], cold.trials[i], i);
  }
  EXPECT_EQ(warm.total_msg_injected, cold.total_msg_injected);
  EXPECT_EQ(warm.total_headers_quarantined, cold.total_headers_quarantined);
}

// A k = 2 plan whose earliest register fault sits at dynamic index 0 can
// never use a rung (every rung has dyn_counts >= the first real injection
// point), so the warm path must fire BOTH faults — proof that rung
// selection keys on the earliest fault, not the last or the mean.
TEST(WarmStartMultiFault, EarliestFaultGatesRungSelection) {
  ExperimentConfig cfg;
  const AppHarness h(apps::get_app("matvec"), cfg);
  ASSERT_FALSE(h.snapshot_ladder().empty());

  inject::InjectionPlan plan;
  const std::uint64_t last = h.golden().dyn_counts[0] - 1;
  plan.faults_by_rank[0] = {{0, 3}, {last, 7}};
  plan.validate();

  TrialOptions warm_opts;
  warm_opts.warm_start = true;
  const TrialResult warm = h.run_trial(plan, warm_opts);
  TrialOptions cold_opts;
  cold_opts.warm_start = false;
  const TrialResult cold = h.run_trial(plan, cold_opts);
  EXPECT_TRUE(warm.injected);
  expect_same_trial(warm, cold, 0);
}

// A message fault at msg_index 0 gates rung usability exactly like an
// early register fault: warm must fire it (msg_injected == 1) and match
// cold bit-for-bit even when the register fault alone would allow a deep
// rung.
TEST(WarmStartMultiFault, EarlyMessageFaultGatesRungSelection) {
  ExperimentConfig cfg;
  const AppHarness h(apps::get_app("lulesh"), cfg);
  ASSERT_GT(h.golden().total_sent_msgs, 0u);

  std::uint32_t sender = 0;
  while (h.golden().msg_counts[sender] == 0) ++sender;
  inject::InjectionPlan plan;
  plan.faults_by_rank[0] = {{h.golden().dyn_counts[0] - 1, 11}};
  plan.msg_faults_by_rank[sender] = {
      {0, inject::MsgFaultTarget::Header, 0, 5}};
  plan.validate();

  TrialOptions warm_opts;
  warm_opts.warm_start = true;
  const TrialResult warm = h.run_trial(plan, warm_opts);
  TrialOptions cold_opts;
  cold_opts.warm_start = false;
  const TrialResult cold = h.run_trial(plan, cold_opts);
  EXPECT_EQ(warm.msg_injected, 1u);
  expect_same_trial(warm, cold, 0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, WarmStartApps, ::testing::ValuesIn(kApps),
                         [](const auto& pi) { return std::string(pi.param); });

}  // namespace
}  // namespace fprop::harness
