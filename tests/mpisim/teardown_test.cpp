#include <gtest/gtest.h>

#include "fprop/harness/harness.h"
#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/mpisim/world.h"
#include "fprop/passes/passes.h"
#include "fprop/support/error.h"

// Stepping-API teardown paths and coordinated checkpoint/restore: the
// surfaces recovery::RecoveryManager depends on, exercised directly.

namespace fprop::mpisim {
namespace {

/// Sweeps until the world leaves Running.
World::StepStatus drive(World& w) {
  for (;;) {
    const World::StepStatus s = w.sweep();
    if (s != World::StepStatus::Running) return s;
  }
}

const char* kRingSrc = R"(
fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  var s: float = 0.0;
  for (var i: int = 0; i < 8; i = i + 1) {
    sb[0] = s + float(rank);
    mpi_send_f((rank + 1) % size, 0, sb, 1);
    mpi_recv_f((rank + size - 1) % size, 0, rb, 1);
    s = s + rb[0] * 0.25;
  }
  output_f(s);
}
)";

TEST(Stepping, SweepLoopMatchesRun) {
  ir::Module m = minic::compile(kRingSrc);
  WorldConfig cfg;
  cfg.nranks = 4;

  World whole(m, cfg);
  const JobResult want = whole.run();
  ASSERT_FALSE(want.crashed);

  World stepped(m, cfg);
  EXPECT_EQ(drive(stepped), World::StepStatus::Done);
  const JobResult got = stepped.collect();
  EXPECT_FALSE(got.crashed);
  EXPECT_EQ(got.outputs(), want.outputs());
  EXPECT_EQ(got.global_cycles, want.global_cycles);
}

TEST(Stepping, TrapReportsOffenderAndKillPropagates) {
  ir::Module m = minic::compile(R"(
fn main() {
  if (mpi_rank() == 1) {
    var z: int = 0;
    output_i(1 / z);
  }
  mpi_barrier();
}
)");
  WorldConfig cfg;
  cfg.nranks = 3;
  World world(m, cfg);
  ASSERT_EQ(drive(world), World::StepStatus::Trapped);
  EXPECT_EQ(world.trapped_rank(), 1u);

  world.kill_job(world.trapped_rank(), vm::Trap::Killed);
  const JobResult job = world.collect();
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::DivByZero);
  EXPECT_EQ(job.first_trap_rank, 1u);
  // Real MPI semantics: every other rank dies with Killed.
  EXPECT_EQ(job.ranks[0].trap, vm::Trap::Killed);
  EXPECT_EQ(job.ranks[2].trap, vm::Trap::Killed);
}

TEST(Stepping, DeadlockIsReportedNotApplied) {
  ir::Module m = minic::compile(R"(
fn main() {
  var rb: float* = alloc_float(1);
  mpi_recv_f((mpi_rank() + 1) % mpi_size(), 0, rb, 1);
}
)");
  WorldConfig cfg;
  cfg.nranks = 2;
  World world(m, cfg);
  ASSERT_EQ(drive(world), World::StepStatus::Deadlocked);

  world.declare_deadlock();
  const JobResult job = world.collect();
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::Deadlock);
}

TEST(Checkpoint, MidFlightRestoreReplaysBitExactly) {
  // Checkpoint between sweeps with messages in flight and ranks mid-loop;
  // the continuation must replay bit-exactly after a restore.
  ir::Module m = minic::compile(kRingSrc);
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.slice = 64;  // small quantum: the checkpoint lands mid-iteration
  World world(m, cfg);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(world.sweep(), World::StepStatus::Running);
  }
  const World::Checkpoint ckpt = world.checkpoint();
  const std::uint64_t ckpt_clock = world.global_cycles();

  ASSERT_EQ(drive(world), World::StepStatus::Done);
  const JobResult first = world.collect();
  ASSERT_FALSE(first.crashed);

  world.restore(ckpt);
  EXPECT_EQ(world.global_cycles(), ckpt_clock);
  ASSERT_EQ(drive(world), World::StepStatus::Done);
  const JobResult second = world.collect();
  EXPECT_FALSE(second.crashed);
  EXPECT_EQ(second.outputs(), first.outputs());
  EXPECT_EQ(second.global_cycles, first.global_cycles);
  EXPECT_EQ(second.max_rank_cycles, first.max_rank_cycles);
}

TEST(Checkpoint, TransientFaultDoesNotReplayAfterRestore) {
  // The acceptance round-trip: snapshot -> perturb (inject + run) ->
  // restore -> re-run reproduces the golden outputs, because the injector's
  // dynamic counters live outside the checkpoint (the fault is transient).
  ir::Module m = minic::compile(kRingSrc);
  (void)passes::instrument_module(m);
  WorldConfig cfg;
  cfg.nranks = 2;

  World golden_world(m, cfg);
  const JobResult golden = golden_world.run();
  ASSERT_FALSE(golden.crashed);

  World world(m, cfg);
  inject::InjectorRuntime inj(inject::InjectionPlan::single(0, 3, 62));
  world.set_inject_hook(&inj);
  const World::Checkpoint ckpt = world.checkpoint();  // t = 0

  (void)drive(world);  // perturbed run (may finish wrong, trap or deadlock)
  ASSERT_EQ(inj.events().size(), 1u);

  world.restore(ckpt);
  ASSERT_EQ(drive(world), World::StepStatus::Done);
  const JobResult replay = world.collect();
  EXPECT_FALSE(replay.crashed);
  EXPECT_EQ(replay.outputs(), golden.outputs());
  EXPECT_EQ(replay.global_cycles, golden.global_cycles);
  EXPECT_EQ(replay.total_cml_final(), 0u);   // shadow tables rewound clean
  EXPECT_EQ(inj.events().size(), 1u);        // the flip did not re-fire
}

TEST(Checkpoint, RestoreRejectsWrongWorldShape) {
  ir::Module m = minic::compile(kRingSrc);
  WorldConfig two;
  two.nranks = 2;
  WorldConfig four;
  four.nranks = 4;
  World a(m, two);
  World b(m, four);
  const World::Checkpoint ckpt = a.checkpoint();
  EXPECT_THROW(b.restore(ckpt), Error);
}

TEST(MultiFaultCampaign, TeardownStaysConsistent) {
  // LLFI++ multi-fault runs on a real MPI app: whatever mix of traps,
  // deadlocks and kills the faults provoke, every crashed trial must carry
  // a cause and no trial may leak inconsistent aggregates.
  harness::ExperimentConfig cfg;
  harness::AppHarness h(apps::get_app("lulesh"), cfg);
  harness::CampaignConfig cc;
  cc.trials = 8;
  cc.faults_per_run = 3;
  const harness::CampaignResult r = harness::run_campaign(h, cc);
  EXPECT_EQ(r.counts.total(), 8u);
  for (const auto& t : r.trials) {
    if (t.outcome == harness::Outcome::Crashed) {
      EXPECT_NE(t.trap, vm::Trap::None);
    } else {
      EXPECT_EQ(t.trap, vm::Trap::None);
    }
    EXPECT_LE(t.contaminated_ranks, h.nranks());
  }
}

}  // namespace
}  // namespace fprop::mpisim
