// Directed adversarial-header suite (DESIGN.md §12): every way the in-flight
// corruption channel can mangle an FPM piggyback header must degrade into a
// quarantine — never a crash, a hang, or a shadow-table entry outside the
// receive buffer. The hooks below write hostile wire images directly, which
// is strictly more adversarial than the sampled single-bit flips the
// injection runtime produces.

#include <gtest/gtest.h>

#include <vector>

#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/mpisim/world.h"
#include "fprop/vm/hooks.h"

namespace fprop::mpisim {
namespace {

// Rank 0 sends one word (3.5) to rank 1, which outputs what it received.
const char* kSendRecvSrc = R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  if (rank == 0) {
    sb[0] = 3.5;
    mpi_send_f(1, 7, sb, 1);
  }
  if (rank == 1) {
    mpi_recv_f(0, 7, rb, 1);
    output_f(rb[0]);
  }
}
)";

/// Replaces every outgoing header's wire image with a fixed hostile stream.
class ReplaceHeaderHook final : public vm::MsgCorruptHook {
 public:
  explicit ReplaceHeaderHook(std::vector<std::uint64_t> wire)
      : wire_(std::move(wire)) {}
  void on_message(std::uint32_t /*sender*/, std::uint64_t /*msg_index*/,
                  std::uint64_t /*cycle*/,
                  std::vector<std::uint64_t>& header_words,
                  std::vector<std::uint64_t>& /*payload*/) override {
    header_words = wire_;
    ++calls_;
  }
  int calls() const noexcept { return calls_; }

 private:
  std::vector<std::uint64_t> wire_;
  int calls_ = 0;
};

struct HostileRun {
  JobResult job;
  std::uint64_t headers_quarantined = 0;
  std::uint64_t records_quarantined = 0;
  std::size_t receiver_cml = 0;
  std::vector<obs::Event> events;
};

HostileRun run_with_hostile_header(std::vector<std::uint64_t> wire) {
  ir::Module m = minic::compile(kSendRecvSrc);
  WorldConfig cfg;
  cfg.nranks = 2;
  obs::TrialRecorder recorder;
  cfg.recorder = &recorder;
  World world(m, cfg);
  ReplaceHeaderHook hook(std::move(wire));
  world.set_msg_hook(&hook);
  HostileRun r;
  r.job = world.run();
  EXPECT_EQ(hook.calls(), 1);
  r.headers_quarantined = world.headers_quarantined();
  r.records_quarantined = world.header_records_quarantined();
  r.receiver_cml = world.fpm(1)->shadow().size();
  r.events = recorder.ordered();
  return r;
}

bool has_quarantine_event(const std::vector<obs::Event>& events) {
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::HeaderQuarantined) return true;
  }
  return false;
}

TEST(HeaderCorruption, OutOfRangeDisplacementIsQuarantined) {
  // One record claiming displacement 1000 in a 1-word buffer.
  const auto r = run_with_hostile_header({1, 1000, 0xBAD});
  EXPECT_FALSE(r.job.crashed);
  EXPECT_EQ(r.job.outputs(), std::vector<double>{3.5});  // payload intact
  EXPECT_EQ(r.headers_quarantined, 1u);
  EXPECT_EQ(r.records_quarantined, 1u);
  EXPECT_EQ(r.receiver_cml, 0u);  // nothing poisoned the shadow table
  EXPECT_TRUE(has_quarantine_event(r.events));
}

TEST(HeaderCorruption, OverflowingDisplacementIsQuarantined) {
  // displacement * 8 wraps uint64 — must not alias back into the table.
  const auto r = run_with_hostile_header({1, ~0ull, 0xBAD});
  EXPECT_FALSE(r.job.crashed);
  EXPECT_EQ(r.records_quarantined, 1u);
  EXPECT_EQ(r.receiver_cml, 0u);
}

TEST(HeaderCorruption, InflatedCountWordCannotForceAllocationOrCrash) {
  // Count word claims 2^50 records; only garbage follows.
  const auto r = run_with_hostile_header({1ull << 50, 77, 0xF00D});
  EXPECT_FALSE(r.job.crashed);
  EXPECT_EQ(r.job.outputs(), std::vector<double>{3.5});
  EXPECT_EQ(r.headers_quarantined, 1u);  // malformed stream flagged
  EXPECT_TRUE(has_quarantine_event(r.events));
}

TEST(HeaderCorruption, TruncatedStreamIsMalformedButHarmless) {
  const auto r = run_with_hostile_header({3, 0});  // count 3, half a record
  EXPECT_FALSE(r.job.crashed);
  EXPECT_EQ(r.job.outputs(), std::vector<double>{3.5});
  EXPECT_EQ(r.headers_quarantined, 1u);
  EXPECT_EQ(r.receiver_cml, 0u);
}

TEST(HeaderCorruption, EmptyWireStreamIsMalformedButHarmless) {
  const auto r = run_with_hostile_header({});
  EXPECT_FALSE(r.job.crashed);
  EXPECT_EQ(r.job.outputs(), std::vector<double>{3.5});
  EXPECT_EQ(r.headers_quarantined, 1u);
}

TEST(HeaderCorruption, InRangeForgedRecordStaysConfinedToBuffer) {
  // A forged in-range record *is* accepted (it is indistinguishable from a
  // real one) — the threat model only guarantees confinement to the buffer.
  const auto r = run_with_hostile_header({1, 0, 0x1234});
  EXPECT_FALSE(r.job.crashed);
  EXPECT_EQ(r.headers_quarantined, 0u);  // well-formed, in range
  EXPECT_EQ(r.receiver_cml, 1u);         // exactly the forged entry
}

TEST(HeaderCorruption, CleanRunHasNoQuarantinesAndNoHookCost) {
  ir::Module m = minic::compile(kSendRecvSrc);
  WorldConfig cfg;
  cfg.nranks = 2;
  World world(m, cfg);  // no hook attached
  const JobResult job = world.run();
  EXPECT_FALSE(job.crashed);
  EXPECT_EQ(job.outputs(), std::vector<double>{3.5});
  EXPECT_EQ(world.headers_quarantined(), 0u);
  EXPECT_EQ(world.sent_messages()[0], 1u);
  EXPECT_EQ(world.sent_messages()[1], 0u);
}

TEST(HeaderCorruption, InjectorPayloadFaultChangesDeliveredValue) {
  // End-to-end through the real injection runtime: flip bit 1 of payload
  // word 0 of rank 0's message #0. 3.5 arrives with its LSB-side mantissa
  // perturbed — deterministically, twice.
  std::vector<double> outs[2];
  for (int run = 0; run < 2; ++run) {
    ir::Module m = minic::compile(kSendRecvSrc);
    WorldConfig cfg;
    cfg.nranks = 2;
    World world(m, cfg);
    inject::InjectionPlan plan;
    plan.msg_faults_by_rank[0] = {
        {0, inject::MsgFaultTarget::Payload, 0, 1}};
    inject::InjectorRuntime injector(plan);
    world.set_msg_hook(&injector);
    const JobResult job = world.run();
    EXPECT_FALSE(job.crashed);
    ASSERT_EQ(injector.msg_events().size(), 1u);
    EXPECT_EQ(injector.msg_events()[0].target,
              inject::MsgFaultTarget::Payload);
    outs[run] = job.outputs();
    ASSERT_EQ(outs[run].size(), 1u);
    EXPECT_NE(outs[run][0], 3.5);
  }
  EXPECT_EQ(outs[0], outs[1]);  // bit-identical replay
}

TEST(HeaderCorruption, SentCountersAndQuarantinesAreCheckpointed) {
  ir::Module m = minic::compile(kSendRecvSrc);
  WorldConfig cfg;
  cfg.nranks = 2;
  World world(m, cfg);
  ReplaceHeaderHook hook({1, 1000, 0xBAD});
  world.set_msg_hook(&hook);
  const World::Checkpoint before = world.checkpoint();
  EXPECT_EQ(before.sent_msgs, (std::vector<std::uint64_t>{0, 0}));
  const JobResult job = world.run();
  ASSERT_FALSE(job.crashed);
  ASSERT_EQ(world.headers_quarantined(), 1u);
  const World::Checkpoint after = world.checkpoint();
  EXPECT_EQ(after.sent_msgs, world.sent_messages());
  EXPECT_EQ(after.headers_quarantined, 1u);
  EXPECT_EQ(after.header_records_quarantined, 1u);
  // Rolling back rewinds the counters with the rest of the state...
  world.restore(before);
  EXPECT_EQ(world.sent_messages()[0], 0u);
  EXPECT_EQ(world.headers_quarantined(), 0u);
  EXPECT_EQ(world.header_records_quarantined(), 0u);
  // ...and restoring forward reinstates them.
  world.restore(after);
  EXPECT_EQ(world.sent_messages()[0], 1u);
  EXPECT_EQ(world.headers_quarantined(), 1u);
  EXPECT_EQ(world.header_records_quarantined(), 1u);
}

}  // namespace
}  // namespace fprop::mpisim
