#include <gtest/gtest.h>

#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/mpisim/world.h"
#include "fprop/passes/passes.h"

namespace fprop::mpisim {
namespace {

JobResult run_mpi(const std::string& src, std::uint32_t nranks,
                  WorldConfig cfg = {}) {
  ir::Module m = minic::compile(src);
  cfg.nranks = nranks;
  World world(m, cfg);
  return world.run();
}

TEST(World, RankAndSizeVisible) {
  const auto job = run_mpi(R"(
fn main() {
  output_i(mpi_rank());
  output_i(mpi_size());
}
)", 4);
  EXPECT_FALSE(job.crashed);
  const auto outs = job.outputs();
  const std::vector<double> want{0, 4, 1, 4, 2, 4, 3, 4};
  EXPECT_EQ(outs, want);
}

TEST(World, RingSendRecv) {
  // Each rank sends its rank to the right neighbor (cyclically) and
  // receives from the left.
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  sb[0] = float(rank);
  mpi_send_f((rank + 1) % size, 7, sb, 1);
  mpi_recv_f((rank + size - 1) % size, 7, rb, 1);
  output_f(rb[0]);
}
)", 4);
  EXPECT_FALSE(job.crashed);
  const std::vector<double> want{3, 0, 1, 2};
  EXPECT_EQ(job.outputs(), want);
}

TEST(World, MessageOrderingFifoPerPair) {
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  if (rank == 0) {
    sb[0] = 1.0; mpi_send_f(1, 5, sb, 1);
    sb[0] = 2.0; mpi_send_f(1, 5, sb, 1);
    sb[0] = 3.0; mpi_send_f(1, 5, sb, 1);
  }
  if (rank == 1) {
    mpi_recv_f(0, 5, rb, 1); output_f(rb[0]);
    mpi_recv_f(0, 5, rb, 1); output_f(rb[0]);
    mpi_recv_f(0, 5, rb, 1); output_f(rb[0]);
  }
}
)", 2);
  EXPECT_FALSE(job.crashed);
  const std::vector<double> want{1, 2, 3};
  EXPECT_EQ(job.outputs(), want);
}

TEST(World, TagSelectivity) {
  // Receiver asks for tag 2 first even though tag 1 was sent first.
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  if (rank == 0) {
    sb[0] = 10.0; mpi_send_f(1, 1, sb, 1);
    sb[0] = 20.0; mpi_send_f(1, 2, sb, 1);
  }
  if (rank == 1) {
    mpi_recv_f(0, 2, rb, 1); output_f(rb[0]);
    mpi_recv_f(0, 1, rb, 1); output_f(rb[0]);
  }
}
)", 2);
  EXPECT_FALSE(job.crashed);
  const std::vector<double> want{20, 10};
  EXPECT_EQ(job.outputs(), want);
}

TEST(World, AnySourceAnyTagWildcards) {
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  if (rank == 1) {
    sb[0] = 42.0;
    mpi_send_f(0, 9, sb, 1);
  }
  if (rank == 0) {
    mpi_recv_f(-1, -1, rb, 1);   // MPI_ANY_SOURCE / MPI_ANY_TAG
    output_f(rb[0]);
  }
}
)", 2);
  EXPECT_FALSE(job.crashed);
  EXPECT_EQ(job.outputs(), std::vector<double>{42.0});
}

TEST(World, SendToInvalidRankFaults) {
  const auto job = run_mpi(R"(
fn main() {
  var sb: float* = alloc_float(1);
  mpi_send_f(99, 0, sb, 1);
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::MpiFault);
}

TEST(World, TruncatedReceiveFaults) {
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(4);
  var rb: float* = alloc_float(4);
  if (rank == 0) { mpi_send_f(1, 0, sb, 4); }
  if (rank == 1) { mpi_recv_f(0, 0, rb, 2); }   // capacity 2 < 4 sent
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::MpiFault);
}

TEST(World, AllreduceSum) {
  const auto job = run_mpi(R"(
fn main() {
  var a: float* = alloc_float(2);
  var b: float* = alloc_float(2);
  a[0] = float(mpi_rank());
  a[1] = 1.0;
  mpi_allreduce_sum_f(a, b, 2);
  output_f(b[0]);
  output_f(b[1]);
}
)", 4);
  EXPECT_FALSE(job.crashed);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(job.ranks[r].outputs[0], 6.0);  // 0+1+2+3
    EXPECT_DOUBLE_EQ(job.ranks[r].outputs[1], 4.0);
  }
}

TEST(World, AllreduceMax) {
  const auto job = run_mpi(R"(
fn main() {
  var a: float* = alloc_float(1);
  var b: float* = alloc_float(1);
  a[0] = float(mpi_rank() * mpi_rank());
  mpi_allreduce_max_f(a, b, 1);
  output_f(b[0]);
}
)", 5);
  EXPECT_FALSE(job.crashed);
  for (const auto& r : job.ranks) EXPECT_DOUBLE_EQ(r.outputs[0], 16.0);
}

TEST(World, Bcast) {
  const auto job = run_mpi(R"(
fn main() {
  var a: float* = alloc_float(2);
  if (mpi_rank() == 2) { a[0] = 5.0; a[1] = 6.0; }
  mpi_bcast_f(2, a, 2);
  output_f(a[0] + a[1]);
}
)", 4);
  EXPECT_FALSE(job.crashed);
  for (const auto& r : job.ranks) EXPECT_DOUBLE_EQ(r.outputs[0], 11.0);
}

TEST(World, BarrierSequencesOutput) {
  const auto job = run_mpi(R"(
fn main() {
  mpi_barrier();
  output_i(mpi_rank());
  mpi_barrier();
  mpi_barrier();
  output_i(100 + mpi_rank());
}
)", 3);
  EXPECT_FALSE(job.crashed);
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(job.ranks[r].outputs[0], static_cast<double>(r));
    EXPECT_EQ(job.ranks[r].outputs[1], static_cast<double>(100 + r));
  }
}

TEST(World, CollectiveKindMismatchFaults) {
  const auto job = run_mpi(R"(
fn main() {
  var a: float* = alloc_float(1);
  var b: float* = alloc_float(1);
  if (mpi_rank() == 0) {
    mpi_barrier();
  } else {
    mpi_allreduce_sum_f(a, b, 1);
  }
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::MpiFault);
}

TEST(World, CollectiveCountMismatchFaults) {
  const auto job = run_mpi(R"(
fn main() {
  var a: float* = alloc_float(4);
  var b: float* = alloc_float(4);
  if (mpi_rank() == 0) {
    mpi_allreduce_sum_f(a, b, 2);
  } else {
    mpi_allreduce_sum_f(a, b, 4);
  }
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::MpiFault);
}

TEST(World, DeadlockDetected) {
  // Both ranks wait for a message that never comes.
  const auto job = run_mpi(R"(
fn main() {
  var rb: float* = alloc_float(1);
  mpi_recv_f((mpi_rank() + 1) % mpi_size(), 0, rb, 1);
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::Deadlock);
}

TEST(World, PartialExitDeadlockDetected) {
  // Rank 0 finishes while rank 1 still waits in a barrier.
  const auto job = run_mpi(R"(
fn main() {
  if (mpi_rank() == 1) { mpi_barrier(); }
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::Deadlock);
}

TEST(World, AbortTearsDownJob) {
  const auto job = run_mpi(R"(
fn main() {
  if (mpi_rank() == 2) { mpi_abort(13); }
  var rb: float* = alloc_float(1);
  mpi_recv_f(-1, -1, rb, 1);   // everyone else would block forever
}
)", 4);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::MpiAbort);
  EXPECT_EQ(job.first_trap_rank, 2u);
  std::size_t killed = 0;
  for (const auto& r : job.ranks) {
    if (r.trap == vm::Trap::Killed) ++killed;
  }
  EXPECT_EQ(killed, 3u);
}

TEST(World, CrashOnOneRankKillsOthers) {
  const auto job = run_mpi(R"(
fn main() {
  if (mpi_rank() == 1) {
    var z: int = 0;
    output_i(1 / z);
  }
  mpi_barrier();
}
)", 3);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::DivByZero);
  EXPECT_EQ(job.first_trap_rank, 1u);
}

TEST(World, NonBlockingRoundTrip) {
  // Overlap communication with computation: post the irecv, isend, compute,
  // then wait — the MCB pattern the paper mentions.
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var sb: float* = alloc_float(2);
  var rb: float* = alloc_float(2);
  var rreq: int = mpi_irecv_f((rank + size - 1) % size, 3, rb, 2);
  sb[0] = float(rank);
  sb[1] = float(rank * 2);
  var sreq: int = mpi_isend_f((rank + 1) % size, 3, sb, 2);
  var acc: float = 0.0;
  for (var i: int = 0; i < 50; i = i + 1) {
    acc = acc + float(i);   // overlapped "computation"
  }
  mpi_wait(sreq);
  mpi_wait(rreq);
  output_f(rb[0] + rb[1] + acc * 0.0);
}
)", 4);
  EXPECT_FALSE(job.crashed);
  // Rank r receives from r-1: value (r-1) + 2*(r-1).
  for (std::uint32_t r = 0; r < 4; ++r) {
    const double prev = static_cast<double>((r + 3) % 4);
    EXPECT_DOUBLE_EQ(job.ranks[r].outputs[0], prev * 3.0);
  }
}

TEST(World, WaitBlocksUntilMessageArrives) {
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  if (rank == 1) {
    var req: int = mpi_irecv_f(0, 0, rb, 1);
    mpi_wait(req);            // blocks: rank 0 sends only after a delay
    output_f(rb[0]);
  } else {
    var acc: float = 0.0;
    for (var i: int = 0; i < 2000; i = i + 1) { acc = acc + 1.0; }
    sb[0] = acc;
    mpi_send_f(1, 0, sb, 1);
  }
}
)", 2);
  EXPECT_FALSE(job.crashed);
  EXPECT_EQ(job.ranks[1].outputs[0], 2000.0);
}

TEST(World, WaitTwiceIsBenign) {
  const auto job = run_mpi(R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  if (rank == 0) { mpi_send_f(1, 0, sb, 1); }
  if (rank == 1) {
    var req: int = mpi_irecv_f(0, 0, rb, 1);
    mpi_wait(req);
    mpi_wait(req);
    output_i(req);
  }
}
)", 2);
  EXPECT_FALSE(job.crashed);
}

TEST(World, CorruptedRequestHandleFaults) {
  const auto job = run_mpi(R"(
fn main() {
  mpi_wait(12345);   // forged/corrupted handle
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::MpiFault);
}

TEST(World, UnmatchedIrecvDeadlocks) {
  const auto job = run_mpi(R"(
fn main() {
  var rb: float* = alloc_float(1);
  if (mpi_rank() == 0) {
    var req: int = mpi_irecv_f(1, 0, rb, 1);
    mpi_wait(req);   // rank 1 never sends
  }
}
)", 2);
  EXPECT_TRUE(job.crashed);
  EXPECT_EQ(job.first_trap, vm::Trap::Deadlock);
}

TEST(World, DeterministicReplay) {
  const char* src = R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  var s: float = 0.0;
  for (var i: int = 0; i < 10; i = i + 1) {
    s = s + rand01();
    sb[0] = s;
    mpi_send_f((rank + 1) % mpi_size(), 0, sb, 1);
    mpi_recv_f((rank + mpi_size() - 1) % mpi_size(), 0, rb, 1);
    s = s + rb[0] * 0.5;
  }
  output_f(s);
}
)";
  const auto a = run_mpi(src, 4);
  const auto b = run_mpi(src, 4);
  ASSERT_FALSE(a.crashed);
  EXPECT_EQ(a.outputs(), b.outputs());
  EXPECT_EQ(a.global_cycles, b.global_cycles);
}

TEST(World, ContaminationCrossesRanksWithPristineValues) {
  // Fig. 4 end-to-end: rank 0's buffer word is corrupted (via injection);
  // after the send, rank 1's copy must be contaminated with the pristine
  // value recoverable from its shadow table.
  const char* src = R"(
fn main() {
  var rank: int = mpi_rank();
  var sb: float* = alloc_float(2);
  var rb: float* = alloc_float(2);
  if (rank == 0) {
    sb[0] = 3.0;
    sb[1] = sb[0] * 2.0;    // injection lands on this multiply
    mpi_send_f(1, 0, sb, 2);
  }
  if (rank == 1) {
    mpi_recv_f(0, 0, rb, 2);
    output_f(rb[1]);
  }
}
)";
  ir::Module m = minic::compile(src);
  (void)passes::instrument_module(m);
  WorldConfig cfg;
  cfg.nranks = 2;
  World world(m, cfg);
  // One fault on rank 0: flip bit 60 of some arithmetic operand.
  inject::InjectorRuntime inj(inject::InjectionPlan::single(0, 0, 60));
  world.set_inject_hook(&inj);
  const JobResult job = world.run();
  ASSERT_FALSE(job.crashed);
  ASSERT_EQ(inj.events().size(), 1u);
  // Rank 1 received corrupted data and its shadow table knows the pristine
  // value 6.0 for the second word.
  EXPECT_GT(job.ranks[1].cml_final, 0u);
  auto* receiver_fpm = world.fpm(1);
  ASSERT_NE(receiver_fpm, nullptr);
  bool found_pristine = false;
  for (const auto& [addr, pristine] : receiver_fpm->shadow().entries()) {
    if (vm::double_of(pristine) == 6.0) found_pristine = true;
  }
  EXPECT_TRUE(found_pristine);
  EXPECT_TRUE(job.ranks[1].first_contaminated_at.has_value());
}

TEST(World, GlobalTraceSampling) {
  ir::Module m = minic::compile(R"(
fn main() {
  var s: float = 0.0;
  for (var i: int = 0; i < 200; i = i + 1) { s = s + 1.0; }
  output_f(s);
}
)");
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.global_sample_period = 64;
  cfg.slice = 32;
  World world(m, cfg);
  const auto job = world.run();
  EXPECT_FALSE(job.crashed);
  const auto& tr = world.global_trace();
  ASSERT_GE(tr.size(), 3u);
  EXPECT_EQ(tr.back().cml, 0u);  // fault-free
  EXPECT_EQ(tr.back().cycle, job.global_cycles);
}

TEST(JobResult, Aggregations) {
  const auto job = run_mpi(R"(
fn main() {
  var a: float* = alloc_float(8);
  a[0] = 1.0;
  report_iters(mpi_rank() * 10);
  output_i(mpi_rank());
}
)", 3);
  EXPECT_EQ(job.reported_iters(), 20);
  EXPECT_EQ(job.outputs().size(), 3u);
  EXPECT_EQ(job.total_cml_final(), 0u);
  EXPECT_EQ(job.contaminated_ranks(), 0u);
  EXPECT_GT(job.total_allocated_words(), 0u);
}

}  // namespace
}  // namespace fprop::mpisim
