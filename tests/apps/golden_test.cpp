#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/shard/coord.h"
#include "fprop/shard/shard.h"

// Per-app golden campaign tests: a fixed-seed 30-trial campaign over every
// registry app must reproduce its outcome distribution exactly. Campaigns
// are deterministic by contract (plans pre-sampled from derive_seed, trials
// pure functions of their plan), so these counts are stable across runs,
// jobs values and platforms. If a change moves them, it changed observable
// injection behaviour — either a bug, or an intentional change that must
// re-capture this table and say so in its commit message.

namespace fprop::apps {
namespace {

struct GoldenRow {
  const char* app;
  std::size_t vanished;
  std::size_t ona;
  std::size_t wrong_output;
  std::size_t pex;
  std::size_t crashed;
};

// Captured at seed=42, trials=30, default ExperimentConfig.
constexpr GoldenRow kGolden[] = {
    {"matvec", 4, 8, 7, 0, 11},
    {"lulesh", 9, 13, 0, 0, 8},
    {"amg", 5, 13, 0, 6, 6},
    {"minife", 5, 17, 4, 3, 1},
    {"lammps", 2, 24, 3, 0, 1},
    {"mcb", 9, 16, 4, 0, 1},
};

class GoldenCampaign : public ::testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenCampaign, OutcomeDistributionIsFrozen) {
  const GoldenRow& row = GetParam();
  harness::ExperimentConfig cfg;
  harness::AppHarness h(get_app(row.app), cfg);
  harness::CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 42;
  cc.jobs = 1;
  const harness::CampaignResult r = harness::run_campaign(h, cc);
  EXPECT_EQ(r.counts.vanished, row.vanished);
  EXPECT_EQ(r.counts.ona, row.ona);
  EXPECT_EQ(r.counts.wrong_output, row.wrong_output);
  EXPECT_EQ(r.counts.pex, row.pex);
  EXPECT_EQ(r.counts.crashed, row.crashed);
  EXPECT_EQ(r.counts.total(), 30u);
}

// Warm-started trials (the default; golden snapshot ladder, DESIGN.md §11)
// must be trial-for-trial bit-identical to cold starts over the same frozen
// 30-trial distributions.
TEST_P(GoldenCampaign, WarmStartReproducesColdStartTrialForTrial) {
  const GoldenRow& row = GetParam();
  harness::ExperimentConfig cfg;
  harness::AppHarness h(get_app(row.app), cfg);
  harness::CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 42;
  cc.jobs = 1;
  cc.warm_start = false;
  const harness::CampaignResult cold = harness::run_campaign(h, cc);
  cc.warm_start = true;
  const harness::CampaignResult warm = harness::run_campaign(h, cc);
  ASSERT_EQ(cold.trials.size(), warm.trials.size());
  for (std::size_t i = 0; i < cold.trials.size(); ++i) {
    const harness::TrialResult& x = cold.trials[i];
    const harness::TrialResult& y = warm.trials[i];
    EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
    EXPECT_EQ(x.trap, y.trap) << "trial " << i;
    EXPECT_EQ(x.injected, y.injected) << "trial " << i;
    EXPECT_EQ(x.injection.site_id, y.injection.site_id) << "trial " << i;
    EXPECT_EQ(x.injection.dyn_index, y.injection.dyn_index) << "trial " << i;
    EXPECT_EQ(x.injection.cycle, y.injection.cycle) << "trial " << i;
    EXPECT_EQ(x.injection.before, y.injection.before) << "trial " << i;
    EXPECT_EQ(x.injection.after, y.injection.after) << "trial " << i;
    EXPECT_EQ(x.total_cml_final, y.total_cml_final) << "trial " << i;
    EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
    EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
    EXPECT_EQ(x.contaminated_ranks, y.contaminated_ranks) << "trial " << i;
    EXPECT_EQ(x.reported_iters, y.reported_iters) << "trial " << i;
    EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
  }
}

// The compiled execution tier (DESIGN.md §13) must be bit-identical to the
// reference interpreter: the same frozen 30-trial campaigns, run once per
// tier, compare field-by-field. (OutcomeDistributionIsFrozen above already
// runs the default Bytecode tier against the frozen table; this leg pins the
// stronger per-trial contract the tier-equivalence fuzz oracle relies on.)
TEST_P(GoldenCampaign, BytecodeTierReproducesInterpTierTrialForTrial) {
  const GoldenRow& row = GetParam();
  harness::ExperimentConfig cfg;
  harness::AppHarness h(get_app(row.app), cfg);
  harness::CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 42;
  cc.jobs = 1;
  cc.exec_tier = vm::ExecTier::Interp;
  const harness::CampaignResult ref = harness::run_campaign(h, cc);
  cc.exec_tier = vm::ExecTier::Bytecode;
  const harness::CampaignResult fast = harness::run_campaign(h, cc);
  ASSERT_EQ(ref.trials.size(), fast.trials.size());
  for (std::size_t i = 0; i < ref.trials.size(); ++i) {
    const harness::TrialResult& x = ref.trials[i];
    const harness::TrialResult& y = fast.trials[i];
    EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
    EXPECT_EQ(x.trap, y.trap) << "trial " << i;
    EXPECT_EQ(x.injected, y.injected) << "trial " << i;
    EXPECT_EQ(x.injection.site_id, y.injection.site_id) << "trial " << i;
    EXPECT_EQ(x.injection.dyn_index, y.injection.dyn_index) << "trial " << i;
    EXPECT_EQ(x.injection.cycle, y.injection.cycle) << "trial " << i;
    EXPECT_EQ(x.injection.before, y.injection.before) << "trial " << i;
    EXPECT_EQ(x.injection.after, y.injection.after) << "trial " << i;
    EXPECT_EQ(x.total_cml_final, y.total_cml_final) << "trial " << i;
    EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
    EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
    EXPECT_EQ(x.contaminated_ranks, y.contaminated_ranks) << "trial " << i;
    EXPECT_EQ(x.reported_iters, y.reported_iters) << "trial " << i;
    EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
  }
  EXPECT_EQ(ref.counts.total(), fast.counts.total());
  EXPECT_EQ(ref.max_contaminated_pct, fast.max_contaminated_pct);
}

// Early-outcome pruning + plan dedup (DESIGN.md §14) must reproduce the
// frozen 30-trial distributions trial-for-trial: the default config (prune
// and dedup on) against an explicit opt-out baseline. The provenance fields
// (pruned / prune_clock / dedup_count) are excluded by design — everything
// observable must be bit-identical.
TEST_P(GoldenCampaign, PruneAndDedupReproduceTrialForTrial) {
  const GoldenRow& row = GetParam();
  harness::ExperimentConfig cfg;
  harness::AppHarness h(get_app(row.app), cfg);
  harness::CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 42;
  cc.jobs = 1;
  cc.prune = false;
  cc.dedup = false;
  const harness::CampaignResult base = harness::run_campaign(h, cc);
  cc.prune = true;
  cc.dedup = true;
  const harness::CampaignResult pruned = harness::run_campaign(h, cc);
  ASSERT_EQ(base.trials.size(), pruned.trials.size());
  for (std::size_t i = 0; i < base.trials.size(); ++i) {
    const harness::TrialResult& x = base.trials[i];
    const harness::TrialResult& y = pruned.trials[i];
    EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
    EXPECT_EQ(x.trap, y.trap) << "trial " << i;
    EXPECT_EQ(x.injected, y.injected) << "trial " << i;
    EXPECT_EQ(x.injection.site_id, y.injection.site_id) << "trial " << i;
    EXPECT_EQ(x.injection.dyn_index, y.injection.dyn_index) << "trial " << i;
    EXPECT_EQ(x.injection.cycle, y.injection.cycle) << "trial " << i;
    EXPECT_EQ(x.injection.before, y.injection.before) << "trial " << i;
    EXPECT_EQ(x.injection.after, y.injection.after) << "trial " << i;
    EXPECT_EQ(x.total_cml_final, y.total_cml_final) << "trial " << i;
    EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
    EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
    EXPECT_EQ(x.contaminated_ranks, y.contaminated_ranks) << "trial " << i;
    EXPECT_EQ(x.reported_iters, y.reported_iters) << "trial " << i;
    EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
  }
  // And the frozen table still holds with the economies active.
  EXPECT_EQ(pruned.counts.vanished, row.vanished);
  EXPECT_EQ(pruned.counts.ona, row.ona);
  EXPECT_EQ(pruned.counts.wrong_output, row.wrong_output);
  EXPECT_EQ(pruned.counts.pex, row.pex);
  EXPECT_EQ(pruned.counts.crashed, row.crashed);
}

// The sharded campaign engine (DESIGN.md §15) must reproduce the frozen
// 30-trial distributions too: a coordinator plus two in-process serve()
// shards — the same code path as fprop-coord + fprop-shard, minus
// fork/exec — lands on the identical outcome row, trial for trial.
TEST_P(GoldenCampaign, DistributedShardsReproduceFrozenTable) {
  const GoldenRow& row = GetParam();
  harness::ExperimentConfig cfg;
  harness::AppHarness h(get_app(row.app), cfg);
  harness::CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 42;
  cc.jobs = 1;
  const harness::CampaignResult local = harness::run_campaign(h, cc);

  std::deque<shard::Conn> shard_ends;
  std::vector<shard::Conn> coord_ends;
  for (int i = 0; i < 2; ++i) {
    auto [coord_end, shard_end] = shard::make_conn_pair();
    coord_ends.push_back(std::move(coord_end));
    shard_ends.push_back(std::move(shard_end));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&shard_ends, i] {
      try {
        shard::serve(shard_ends[static_cast<std::size_t>(i)]);
      } catch (...) {
      }
    });
  }
  const harness::CampaignResult dist =
      shard::run_distributed_campaign(h, cc, std::move(coord_ends));
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(dist.counts.vanished, row.vanished);
  EXPECT_EQ(dist.counts.ona, row.ona);
  EXPECT_EQ(dist.counts.wrong_output, row.wrong_output);
  EXPECT_EQ(dist.counts.pex, row.pex);
  EXPECT_EQ(dist.counts.crashed, row.crashed);
  ASSERT_EQ(local.trials.size(), dist.trials.size());
  for (std::size_t i = 0; i < local.trials.size(); ++i) {
    const harness::TrialResult& x = local.trials[i];
    const harness::TrialResult& y = dist.trials[i];
    EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
    EXPECT_EQ(x.trap, y.trap) << "trial " << i;
    EXPECT_EQ(x.injection.site_id, y.injection.site_id) << "trial " << i;
    EXPECT_EQ(x.injection.dyn_index, y.injection.dyn_index) << "trial " << i;
    EXPECT_EQ(x.injection.before, y.injection.before) << "trial " << i;
    EXPECT_EQ(x.injection.after, y.injection.after) << "trial " << i;
    EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
    EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
    EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
    EXPECT_EQ(x.dedup_count, y.dedup_count) << "trial " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, GoldenCampaign, ::testing::ValuesIn(kGolden),
                         [](const auto& pi) { return std::string(pi.param.app); });

}  // namespace
}  // namespace fprop::apps
