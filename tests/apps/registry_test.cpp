#include <gtest/gtest.h>

#include <cmath>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/support/error.h"

namespace fprop::apps {
namespace {

TEST(Registry, AllPaperAppsPresent) {
  const auto& apps = paper_apps();
  ASSERT_EQ(apps.size(), 5u);
  // Fig. 6 order.
  EXPECT_EQ(apps[0].name, "lulesh");
  EXPECT_EQ(apps[1].name, "amg");
  EXPECT_EQ(apps[2].name, "minife");
  EXPECT_EQ(apps[3].name, "lammps");
  EXPECT_EQ(apps[4].name, "mcb");
}

TEST(Registry, LookupByName) {
  EXPECT_EQ(get_app("matvec").default_nranks, 1u);
  EXPECT_EQ(get_app("lulesh").default_nranks, 8u);
  EXPECT_THROW(get_app("nonexistent"), Error);
}

TEST(Registry, InstantiateSubstitutesDefaults) {
  const auto& spec = get_app("matvec");
  const std::string src = instantiate(spec);
  EXPECT_EQ(src.find('@'), std::string::npos);
  EXPECT_NE(src.find("var iters: int = 3;"), std::string::npos);
}

TEST(Registry, InstantiateOverrides) {
  const auto& spec = get_app("matvec");
  const std::string src = instantiate(spec, {{"ITERS", "7"}});
  EXPECT_NE(src.find("var iters: int = 7;"), std::string::npos);
}

TEST(Registry, UnresolvedPlaceholderThrows) {
  AppSpec broken;
  broken.name = "broken";
  broken.source = "fn main() { var x: int = @MISSING@; }";
  EXPECT_THROW(instantiate(broken), Error);
}

TEST(Registry, AllAppsCompile) {
  for (const auto& spec : paper_apps()) {
    SCOPED_TRACE(spec.name);
    EXPECT_NO_THROW({
      const ir::Module m = compile_app(spec);
      EXPECT_GT(m.static_instr_count(), 50u);
    });
  }
  EXPECT_NO_THROW(compile_app(get_app("matvec")));
}

// Golden-run physical sanity per application (parameterized).
class AppGolden : public ::testing::TestWithParam<const char*> {
 protected:
  static harness::AppHarness make(const char* name) {
    harness::ExperimentConfig cfg;
    return harness::AppHarness(get_app(name), cfg);
  }
};

TEST_P(AppGolden, CompletesWithSaneOutputs) {
  harness::AppHarness h = make(GetParam());
  const auto& g = h.golden();
  EXPECT_GT(g.global_cycles, 10'000u);
  EXPECT_GT(g.total_dyn_points, 100u);
  EXPECT_FALSE(g.outputs.empty());
  for (double v : g.outputs) {
    EXPECT_FALSE(std::isnan(v)) << "NaN in golden output";
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, AppGolden,
                         ::testing::Values("lulesh", "amg", "minife",
                                           "lammps", "mcb"),
                         [](const auto& pi) { return std::string(pi.param); });

TEST(AppGoldenDetail, MinifeConvergesWithinCap) {
  harness::ExperimentConfig cfg;
  harness::AppHarness h(apps::get_app("minife"), cfg);
  // outputs[0] is the app's own acceptance flag.
  EXPECT_DOUBLE_EQ(h.golden().outputs[0], 1.0);
  EXPECT_GT(h.golden().reported_iters, 10);
  EXPECT_LT(h.golden().reported_iters, 600);
}

TEST(AppGoldenDetail, AmgConvergesLikeMultigrid) {
  harness::ExperimentConfig cfg;
  harness::AppHarness h(apps::get_app("amg"), cfg);
  EXPECT_DOUBLE_EQ(h.golden().outputs[0], 1.0);
  // Textbook V-cycle: a handful of cycles regardless of size.
  EXPECT_LE(h.golden().reported_iters, 12);
}

TEST(AppGoldenDetail, LuleshConservesEnergyWithinBounds) {
  harness::ExperimentConfig cfg;
  harness::AppHarness h(apps::get_app("lulesh"), cfg);
  // outputs[0] is the final total energy; the blast starts around 10 + n
  // cells of background ~0.1: it must stay positive and bounded.
  const double e_final = h.golden().outputs[0];
  EXPECT_GT(e_final, 1.0);
  EXPECT_LT(e_final, 200.0);
}

TEST(AppGoldenDetail, McbTallyPositive) {
  harness::ExperimentConfig cfg;
  harness::AppHarness h(apps::get_app("mcb"), cfg);
  EXPECT_GT(h.golden().outputs[0], 0.0);  // global tally
}

TEST(AppGoldenDetail, LammpsEnergyFinite) {
  harness::ExperimentConfig cfg;
  harness::AppHarness h(apps::get_app("lammps"), cfg);
  const double ke = h.golden().outputs[0];
  EXPECT_GT(ke, 0.0);
  EXPECT_LT(ke, 1e4);  // chain did not explode
}

TEST(AppScaling, AppsRunAtDifferentRankCounts) {
  for (std::uint32_t nranks : {2u, 4u}) {
    for (const char* name : {"lulesh", "mcb"}) {
      SCOPED_TRACE(std::string(name) + "@" + std::to_string(nranks));
      harness::ExperimentConfig cfg;
      cfg.nranks = nranks;
      EXPECT_NO_THROW({
        harness::AppHarness h(get_app(name), cfg);
        EXPECT_FALSE(h.golden().outputs.empty());
      });
    }
  }
}

TEST(AppScaling, ProblemSizeOverride) {
  harness::ExperimentConfig small;
  small.overrides = {{"ITERS", "2"}};
  small.nranks = 1;
  harness::AppHarness h(get_app("matvec"), small);
  // After 2 iterations: b1 = [232 226 264 240] (paper Fig. 1).
  const std::vector<double> want{232, 226, 264, 240};
  EXPECT_EQ(h.golden().outputs, want);
}

}  // namespace
}  // namespace fprop::apps
