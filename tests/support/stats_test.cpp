#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fprop/support/error.h"
#include "fprop/support/stats.h"

namespace fprop {
namespace {

TEST(RunningStat, Empty) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat rs;
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStat, NegativeValuesTrackMinMax) {
  RunningStat rs;
  rs.add(-3.0);
  rs.add(1.0);
  rs.add(-7.5);
  EXPECT_DOUBLE_EQ(rs.min(), -7.5);
  EXPECT_DOUBLE_EQ(rs.max(), 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsEmptyConfig) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), Error);
}

TEST(ChiSquared, UpperTailKnownValues) {
  // chi2(x=3.84, dof=1) upper tail ~ 0.05; chi2(x=0) = 1.
  EXPECT_NEAR(chi_squared_upper_tail(3.841, 1), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(chi_squared_upper_tail(0.0, 5), 1.0);
  // Median of chi2(dof) ~ dof*(1-2/(9dof))^3; for dof=10 ~ 9.34.
  EXPECT_NEAR(chi_squared_upper_tail(9.34, 10), 0.5, 0.01);
  // Far tail.
  EXPECT_LT(chi_squared_upper_tail(100.0, 5), 1e-15);
}

TEST(ChiSquared, UniformSamplesPass) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 10000; ++i) {
    h.add(static_cast<double>(i % 100) + 0.5);
  }
  const auto r = chi_squared_uniform(h);
  EXPECT_TRUE(r.uniform_at_5pct);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);  // perfectly uniform
}

TEST(ChiSquared, SkewedSamplesFail) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(1.0);  // everything in one bin
  for (int i = 0; i < 100; ++i) h.add(5.0);
  const auto r = chi_squared_uniform(h);
  EXPECT_FALSE(r.uniform_at_5pct);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  std::vector<double> yn{-2, -4, -6, -8, -10};
  EXPECT_NEAR(pearson_correlation(x, yn), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Quantile, Interpolation) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
}

TEST(Quantile, SingleElement) {
  std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.7), 42.0);
}

}  // namespace
}  // namespace fprop
