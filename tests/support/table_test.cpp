#include <gtest/gtest.h>

#include <vector>

#include "fprop/support/error.h"
#include "fprop/support/table.h"

namespace fprop {
namespace {

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|   name | value |"), std::string::npos);
  EXPECT_NE(s.find("|      a |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| longer |    22 |"), std::string::npos);
}

TEST(TableWriter, RowWidthChecked) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableWriter, EmptyHeaderRejected) {
  EXPECT_THROW(TableWriter({}), Error);
}

TEST(TableWriter, ValueRowFormatting) {
  TableWriter t({"x", "y"});
  const std::vector<double> vals{1.23456, 2.0};
  t.add_row_values(vals, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
  EXPECT_NE(t.to_string().find("2.00"), std::string::npos);
}

TEST(BarChart, ScalesToMax) {
  const std::vector<std::string> labels{"a", "bb"};
  const std::vector<double> values{50.0, 100.0};
  const std::string s = render_bar_chart(labels, values, 100.0, 10);
  // 50% -> 5 hashes, 100% -> 10 hashes.
  EXPECT_NE(s.find("a  |#####     |"), std::string::npos);
  EXPECT_NE(s.find("bb |##########|"), std::string::npos);
}

TEST(BarChart, ClampsOverflow) {
  const std::vector<std::string> labels{"x"};
  const std::vector<double> values{250.0};
  const std::string s = render_bar_chart(labels, values, 100.0, 10);
  EXPECT_NE(s.find("##########"), std::string::npos);
}

TEST(RenderSeries, EmptyAndBasic) {
  EXPECT_NE(render_series({}, {}).find("empty"), std::string::npos);
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{0, 1, 2, 3};
  const std::string s = render_series(xs, ys, 20, 5);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("virtual time"), std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace fprop
