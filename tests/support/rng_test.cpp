#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fprop/support/rng.h"
#include "fprop/support/stats.h"

namespace fprop {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 (from the SplitMix64 reference
  // implementation).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicAcrossInstances) {
  Xoshiro256 a(1234);
  Xoshiro256 b(1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowZeroBoundIsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256, NextBelowIsUnbiased) {
  // Chi-squared check over a small modulus that would show modulo bias.
  Xoshiro256 rng(7);
  Histogram h(0.0, 6.0, 6);
  for (int i = 0; i < 60000; ++i) {
    h.add(static_cast<double>(rng.next_below(6)));
  }
  const auto chi = chi_squared_uniform(h);
  EXPECT_TRUE(chi.uniform_at_5pct) << "p=" << chi.p_value;
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  RunningStat rs;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    rs.add(d);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.02);
}

TEST(DeriveSeed, IndependentStreams) {
  // Streams derived from the same master seed must not collide.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(derive_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
}

}  // namespace
}  // namespace fprop
