#include <gtest/gtest.h>

#include "fprop/minic/lexer.h"
#include "fprop/support/error.h"

namespace fprop::minic {
namespace {

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, Keywords) {
  const auto k = kinds("fn var if else while for return break continue");
  const std::vector<Tok> want{
      Tok::KwFn, Tok::KwVar, Tok::KwIf, Tok::KwElse, Tok::KwWhile,
      Tok::KwFor, Tok::KwReturn, Tok::KwBreak, Tok::KwContinue, Tok::End};
  EXPECT_EQ(k, want);
}

TEST(Lexer, IdentifiersVsKeywords) {
  const auto toks = lex("fnord variable if_ _for");
  ASSERT_EQ(toks.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(toks[i].kind, Tok::Ident);
  }
  EXPECT_EQ(toks[0].text, "fnord");
  EXPECT_EQ(toks[3].text, "_for");
}

TEST(Lexer, IntegerLiterals) {
  const auto toks = lex("0 42 9223372036854775807");
  EXPECT_EQ(toks[0].int_val, 0);
  EXPECT_EQ(toks[1].int_val, 42);
  EXPECT_EQ(toks[2].int_val, 9223372036854775807LL);
}

TEST(Lexer, IntegerOverflowRejected) {
  EXPECT_THROW(lex("99999999999999999999999"), CompileError);
}

TEST(Lexer, FloatLiterals) {
  const auto toks = lex("1.5 0.25 1e3 2.5e-2 1E+2");
  EXPECT_EQ(toks[0].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[0].float_val, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].float_val, 0.25);
  EXPECT_DOUBLE_EQ(toks[2].float_val, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].float_val, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].float_val, 100.0);
}

TEST(Lexer, MalformedExponentRejected) {
  EXPECT_THROW(lex("1e"), CompileError);
  EXPECT_THROW(lex("1e+"), CompileError);
}

TEST(Lexer, DotWithoutDigitsIsError) {
  // `1.` is not a float literal in MiniC (no trailing-dot form), and a bare
  // dot is not a token at all.
  EXPECT_THROW(lex("a . b"), CompileError);
}

TEST(Lexer, Operators) {
  const auto k = kinds("+ - * / % & | ^ ~ << >> && || ! == != < <= > >= = ->");
  const std::vector<Tok> want{
      Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash, Tok::Percent, Tok::Amp,
      Tok::Pipe, Tok::Caret, Tok::Tilde, Tok::Shl, Tok::Shr, Tok::AmpAmp,
      Tok::PipePipe, Tok::Bang, Tok::EqEq, Tok::NotEq, Tok::Lt, Tok::Le,
      Tok::Gt, Tok::Ge, Tok::Assign, Tok::Arrow, Tok::End};
  EXPECT_EQ(k, want);
}

TEST(Lexer, MaximalMunch) {
  // `<<=` lexes as `<<` `=`, `>>=` as `>>` `=`, `&&&` as `&&` `&`.
  EXPECT_EQ(kinds("<<="),
            (std::vector<Tok>{Tok::Shl, Tok::Assign, Tok::End}));
  EXPECT_EQ(kinds("&&&"), (std::vector<Tok>{Tok::AmpAmp, Tok::Amp, Tok::End}));
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = lex("a // comment with fn var 123\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("a\n  bb\n   c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].column, 4);
}

TEST(Lexer, InvalidCharacterRejected) {
  EXPECT_THROW(lex("a $ b"), CompileError);
  EXPECT_THROW(lex("\"string\""), CompileError);
}

TEST(Lexer, ErrorCarriesLocation) {
  try {
    lex("ok\n   $");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 4);
  }
}

}  // namespace
}  // namespace fprop::minic
