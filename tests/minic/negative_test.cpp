#include <gtest/gtest.h>

#include <string>

#include "fprop/minic/compile.h"
#include "fprop/support/error.h"

// Negative-path frontend tests seeded from fuzzer-found inputs: every
// malformed program must be rejected with CompileError carrying a usable
// message — never another exception type, never a crash. Each block below
// names the defect class the fuzzing campaign originally surfaced.

namespace fprop::minic {
namespace {

void expect_rejected(const std::string& src) {
  try {
    (void)compile(src);
    FAIL() << "malformed program compiled:\n" << src;
  } catch (const CompileError& e) {
    EXPECT_FALSE(std::string(e.what()).empty());
  }
  // Any other exception escapes and fails the test with its own type.
}

// Fuzzer-found: std::stod threw std::out_of_range straight through the
// lexer for literals beyond double range.
TEST(NegativePath, FloatLiteralOutOfRange) {
  expect_rejected("fn main() { var x: float = 1e999999999; }");
  expect_rejected("fn main() { var x: float = 9" + std::string(400, '9') +
                  ".0; }");
}

// Fuzzer-found: unbounded recursive descent let deep nesting exhaust the
// C++ call stack before any diagnostic fired.
TEST(NegativePath, DeepParenNestingHitsGuardNotStack) {
  const std::string deep = "fn main() { var x: int = " +
                           std::string(5000, '(') + "1" +
                           std::string(5000, ')') + "; }";
  expect_rejected(deep);
}

TEST(NegativePath, DeepBraceNestingHitsGuardNotStack) {
  std::string deep = "fn main() ";
  for (int i = 0; i < 5000; ++i) deep += "{ ";
  expect_rejected(deep);  // also unbalanced: either diagnostic is fine
}

TEST(NegativePath, DeepUnaryChainHitsGuardNotStack) {
  expect_rejected("fn main() { output_i(" + std::string(5000, '!') + "0); }");
}

TEST(NegativePath, ModestNestingStillCompiles) {
  // The depth guard must not reject programs a human would write.
  const std::string ok = "fn main() { output_i(" + std::string(50, '(') + "1" +
                         std::string(50, ')') + "); }";
  EXPECT_NO_THROW((void)compile(ok));
}

TEST(NegativePath, TruncatedInputs) {
  expect_rejected("fn main() { var a: int = rank +");
  expect_rejected("fn main() { if (1) {");
  expect_rejected("fn main(");
  expect_rejected("fn");
}

TEST(NegativePath, UnbalancedAndMisplacedTokens) {
  expect_rejected("fn main() { var x: int = {{{{ 1; }");
  expect_rejected("fn main() { ) ( }");
  expect_rejected("fn main() { var x: int = ; }");
  expect_rejected("}} fn main() {}");
}

TEST(NegativePath, GarbageBytes) {
  expect_rejected("\x01\x02\x7f garbage @@@ $$$");
  expect_rejected(std::string("fn main() { \0 }", 15));
}

TEST(NegativePath, EmptyAndCommentOnlySources) {
  // No main function: must be a diagnostic, not a null deref at run-entry.
  expect_rejected("");
  expect_rejected("// nothing but a comment\n");
}

}  // namespace
}  // namespace fprop::minic
