#include <gtest/gtest.h>

#include "fprop/minic/ast.h"
#include "fprop/support/error.h"

namespace fprop::minic {
namespace {

const FuncDecl& only_fn(const Program& p) {
  EXPECT_EQ(p.functions.size(), 1u);
  return p.functions.front();
}

TEST(Parser, FunctionSignature) {
  const Program p = parse("fn f(a: int, b: float, c: float*) -> int { return a; }");
  const FuncDecl& f = only_fn(p);
  EXPECT_EQ(f.name, "f");
  ASSERT_EQ(f.params.size(), 3u);
  EXPECT_EQ(f.params[0].type, TypeKind::Int);
  EXPECT_EQ(f.params[1].type, TypeKind::Float);
  EXPECT_EQ(f.params[2].type, TypeKind::FloatPtr);
  EXPECT_TRUE(f.has_return);
  EXPECT_EQ(f.return_type, TypeKind::Int);
}

TEST(Parser, VoidFunction) {
  const Program p = parse("fn g() { }");
  EXPECT_FALSE(only_fn(p).has_return);
}

TEST(Parser, VarDeclarations) {
  const Program p = parse(R"(fn f() {
    var a: int;
    var b: float = 1.5;
    var c: int* = alloc_int(4);
  })");
  const auto& body = only_fn(p).body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->kind, Stmt::Kind::VarDecl);
  EXPECT_EQ(body[0]->var_type, TypeKind::Int);
  EXPECT_EQ(body[0]->expr, nullptr);
  EXPECT_NE(body[1]->expr, nullptr);
  EXPECT_EQ(body[2]->var_type, TypeKind::IntPtr);
}

TEST(Parser, PrecedenceMulOverAdd) {
  const Program p = parse("fn f() -> int { return 1 + 2 * 3; }");
  const Expr& e = *only_fn(p).body[0]->expr;
  ASSERT_EQ(e.kind, Expr::Kind::Binary);
  EXPECT_EQ(e.bin_op, BinOp::Add);
  EXPECT_EQ(e.rhs->bin_op, BinOp::Mul);
}

TEST(Parser, PrecedenceShiftVsCompare) {
  // `a << b < c` parses as `(a << b) < c`.
  const Program p = parse("fn f(a: int, b: int, c: int) -> int { return a << b < c; }");
  const Expr& e = *only_fn(p).body[0]->expr;
  EXPECT_EQ(e.bin_op, BinOp::Lt);
  EXPECT_EQ(e.lhs->bin_op, BinOp::Shl);
}

TEST(Parser, PrecedenceLogicalLowest) {
  const Program p = parse("fn f(a: int, b: int) -> int { return a == 1 && b == 2; }");
  const Expr& e = *only_fn(p).body[0]->expr;
  EXPECT_EQ(e.bin_op, BinOp::LogAnd);
  EXPECT_EQ(e.lhs->bin_op, BinOp::Eq);
}

TEST(Parser, LeftAssociativity) {
  const Program p = parse("fn f() -> int { return 10 - 3 - 2; }");
  const Expr& e = *only_fn(p).body[0]->expr;
  EXPECT_EQ(e.bin_op, BinOp::Sub);
  EXPECT_EQ(e.lhs->bin_op, BinOp::Sub);  // (10-3)-2
  EXPECT_EQ(e.rhs->kind, Expr::Kind::IntLit);
}

TEST(Parser, UnaryAndCasts) {
  const Program p = parse("fn f(x: float) -> int { return -int(x) + int(1.0); }");
  const Expr& e = *only_fn(p).body[0]->expr;
  EXPECT_EQ(e.lhs->kind, Expr::Kind::Unary);
  EXPECT_EQ(e.lhs->un_op, UnOp::Neg);
  EXPECT_EQ(e.lhs->lhs->kind, Expr::Kind::CastInt);
}

TEST(Parser, IndexingAndIndexedAssignment) {
  const Program p = parse(R"(fn f(a: float*) {
    a[0] = a[1] + a[2 * 3];
  })");
  const Stmt& s = *only_fn(p).body[0];
  EXPECT_EQ(s.kind, Stmt::Kind::IndexAssign);
  EXPECT_EQ(s.index_base->kind, Expr::Kind::Var);
  EXPECT_EQ(s.index->kind, Expr::Kind::IntLit);
  EXPECT_EQ(s.expr->kind, Expr::Kind::Binary);
}

TEST(Parser, NestedIndexTarget) {
  // Chained indexing is an expression; assignment applies to the outermost.
  const Program p = parse("fn f(a: float*, i: int) { a[i + 1] = 0.0; }");
  EXPECT_EQ(only_fn(p).body[0]->kind, Stmt::Kind::IndexAssign);
}

TEST(Parser, IfElseChain) {
  const Program p = parse(R"(fn f(x: int) -> int {
    if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; }
  })");
  const Stmt& s = *only_fn(p).body[0];
  ASSERT_EQ(s.kind, Stmt::Kind::If);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, Stmt::Kind::If);
  EXPECT_EQ(s.else_body[0]->else_body.size(), 1u);
}

TEST(Parser, ForLoopPieces) {
  const Program p = parse(R"(fn f() {
    for (var i: int = 0; i < 10; i = i + 1) { }
    for (;;) { break; }
  })");
  const Stmt& full = *only_fn(p).body[0];
  EXPECT_NE(full.for_init, nullptr);
  EXPECT_NE(full.expr, nullptr);
  EXPECT_NE(full.for_step, nullptr);
  const Stmt& bare = *only_fn(p).body[1];
  EXPECT_EQ(bare.for_init, nullptr);
  EXPECT_EQ(bare.expr, nullptr);
  EXPECT_EQ(bare.for_step, nullptr);
}

TEST(Parser, WhileBreakContinue) {
  const Program p = parse(R"(fn f() {
    while (1) { if (0) { break; } continue; }
  })");
  const Stmt& w = *only_fn(p).body[0];
  EXPECT_EQ(w.kind, Stmt::Kind::While);
  EXPECT_EQ(w.body[1]->kind, Stmt::Kind::Continue);
}

TEST(Parser, CallsAndArgs) {
  const Program p = parse("fn f() { g(1, 2.0, h()); }");
  const Expr& c = *only_fn(p).body[0]->expr;
  ASSERT_EQ(c.kind, Expr::Kind::Call);
  EXPECT_EQ(c.name, "g");
  ASSERT_EQ(c.args.size(), 3u);
  EXPECT_EQ(c.args[2]->kind, Expr::Kind::Call);
}

TEST(Parser, BlockStatement) {
  const Program p = parse("fn f() { { var x: int; } }");
  EXPECT_EQ(only_fn(p).body[0]->kind, Stmt::Kind::Block);
}

struct BadSource {
  const char* name;
  const char* src;
};

class ParserErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserErrors, Rejected) {
  EXPECT_THROW(parse(GetParam().src), CompileError);
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParserErrors,
    ::testing::Values(
        BadSource{"missing_brace", "fn f() { "},
        BadSource{"missing_paren", "fn f( { }"},
        BadSource{"missing_semi", "fn f() { var x: int = 1 }"},
        BadSource{"bad_type", "fn f(x: double) { }"},
        BadSource{"no_fn_keyword", "f() { }"},
        BadSource{"assign_to_literal", "fn f() { 1 = 2; }"},
        BadSource{"empty_condition_if", "fn f() { if () { } }"},
        BadSource{"else_without_if", "fn f() { else { } }"},
        BadSource{"missing_colon", "fn f() { var x int; }"},
        BadSource{"trailing_comma", "fn f() { g(1,); }"},
        BadSource{"unclosed_index", "fn f(a: int*) { a[1 = 2; }"},
        BadSource{"top_level_stmt", "var x: int;"}),
    [](const ::testing::TestParamInfo<BadSource>& pi) {
      return pi.param.name;
    });

}  // namespace
}  // namespace fprop::minic
