// Execution-level semantics of MiniC: each test compiles a snippet, runs it
// on the VM and checks the emitted outputs. This covers codegen and
// interpreter behavior together (golden end-to-end language semantics).

#include <gtest/gtest.h>

#include <cmath>

#include "fprop/minic/compile.h"
#include "fprop/support/error.h"
#include "fprop/vm/interp.h"

namespace fprop {
namespace {

std::vector<double> run(const std::string& body_or_program,
                        vm::Trap expect_trap = vm::Trap::None) {
  const std::string src =
      body_or_program.find("fn ") != std::string::npos
          ? body_or_program
          : "fn main() {\n" + body_or_program + "\n}";
  ir::Module m = minic::compile(src);
  vm::Interp interp(m, 0, vm::InterpConfig{});
  const vm::RunState rs = interp.run(1ull << 30);
  if (expect_trap == vm::Trap::None) {
    EXPECT_EQ(rs, vm::RunState::Done);
  } else {
    EXPECT_EQ(rs, vm::RunState::Trapped);
    EXPECT_EQ(interp.trap(), expect_trap);
  }
  return interp.outputs();
}

TEST(MinicExec, IntArithmetic) {
  const auto out = run(R"(
    output_i(7 + 3 * 2);
    output_i(10 / 3);
    output_i(10 % 3);
    output_i(-5 / 2);
    output_i(7 & 3);
    output_i(4 | 1);
    output_i(6 ^ 3);
    output_i(~0);
    output_i(1 << 10);
    output_i(1024 >> 3);
  )");
  const std::vector<double> want{13, 3, 1, -2, 3, 5, 5, -1, 1024, 128};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, FloatArithmetic) {
  const auto out = run(R"(
    output_f(1.5 + 2.25);
    output_f(2.0 * 3.5 - 1.0);
    output_f(7.0 / 2.0);
    output_f(-1.5);
  )");
  EXPECT_DOUBLE_EQ(out[0], 3.75);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_DOUBLE_EQ(out[2], 3.5);
  EXPECT_DOUBLE_EQ(out[3], -1.5);
}

TEST(MinicExec, Comparisons) {
  const auto out = run(R"(
    output_i(1 < 2);
    output_i(2 < 1);
    output_i(2 <= 2);
    output_i(3 > 2);
    output_i(2 >= 3);
    output_i(2 == 2);
    output_i(2 != 2);
    output_i(1.5 < 2.5);
    output_i(2.5 == 2.5);
    output_i(-1 < 1);
  )");
  const std::vector<double> want{1, 0, 1, 1, 0, 1, 0, 1, 1, 1};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, LogicalOperators) {
  // Non-short-circuit, normalized to 0/1 (docs/minic.md).
  const auto out = run(R"(
    output_i(2 && 3);
    output_i(2 && 0);
    output_i(0 || 5);
    output_i(0 || 0);
    output_i(!0);
    output_i(!7);
  )");
  const std::vector<double> want{1, 0, 1, 0, 1, 0};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, Casts) {
  const auto out = run(R"(
    output_i(int(3.9));
    output_i(int(-3.9));
    output_f(float(7));
    output_f(float(-2));
  )");
  const std::vector<double> want{3, -3, 7.0, -2.0};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, VariablesAndScopes) {
  const auto out = run(R"(
    var x: int = 1;
    {
      var x: int = 2;   // shadows
      output_i(x);
    }
    output_i(x);
    x = x + 41;
    output_i(x);
  )");
  const std::vector<double> want{2, 1, 42};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, DefaultInitializedToZero) {
  const auto out = run(R"(
    var i: int;
    var f: float;
    output_i(i);
    output_f(f);
  )");
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(MinicExec, IfElseChains) {
  const auto out = run(R"(
    for (var x: int = 0; x < 4; x = x + 1) {
      if (x == 0) { output_i(100); }
      else if (x == 1) { output_i(101); }
      else if (x == 2) { output_i(102); }
      else { output_i(999); }
    }
  )");
  const std::vector<double> want{100, 101, 102, 999};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, WhileLoop) {
  const auto out = run(R"(
    var s: int = 0;
    var i: int = 1;
    while (i <= 10) {
      s = s + i;
      i = i + 1;
    }
    output_i(s);
  )");
  EXPECT_EQ(out[0], 55.0);
}

TEST(MinicExec, ForWithBreakContinue) {
  const auto out = run(R"(
    var s: int = 0;
    for (var i: int = 0; i < 100; i = i + 1) {
      if (i % 2 == 0) { continue; }
      if (i > 10) { break; }
      s = s + i;   // 1+3+5+7+9 = 25
    }
    output_i(s);
  )");
  EXPECT_EQ(out[0], 25.0);
}

TEST(MinicExec, NestedLoopsWithBreak) {
  const auto out = run(R"(
    var count: int = 0;
    for (var i: int = 0; i < 3; i = i + 1) {
      for (var j: int = 0; j < 10; j = j + 1) {
        if (j == 2) { break; }   // inner break only
        count = count + 1;
      }
    }
    output_i(count);
  )");
  EXPECT_EQ(out[0], 6.0);
}

TEST(MinicExec, Arrays) {
  const auto out = run(R"(
    var a: float* = alloc_float(8);
    for (var i: int = 0; i < 8; i = i + 1) { a[i] = float(i * i); }
    var s: float = 0.0;
    for (var i: int = 0; i < 8; i = i + 1) { s = s + a[i]; }
    output_f(s);   // 0+1+4+...+49 = 140
    var b: int* = alloc_int(3);
    b[0] = 5; b[1] = b[0] * 2; b[2] = b[1] - b[0];
    output_i(b[2]);
  )");
  EXPECT_EQ(out[0], 140.0);
  EXPECT_EQ(out[1], 5.0);
}

TEST(MinicExec, ArraysZeroInitialized) {
  const auto out = run(R"(
    var a: float* = alloc_float(4);
    output_f(a[3]);
  )");
  EXPECT_EQ(out[0], 0.0);
}

TEST(MinicExec, PointerOffsetArithmetic) {
  const auto out = run(R"(
    var a: float* = alloc_float(8);
    a[5] = 3.5;
    var p: float* = a + 4;
    output_f(p[1]);
  )");
  EXPECT_EQ(out[0], 3.5);
}

TEST(MinicExec, FunctionsAndRecursion) {
  const auto out = run(R"(
fn fib(n: int) -> int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn twice(x: float) -> float { return x * 2.0; }
fn main() {
  output_i(fib(12));
  output_f(twice(21.0));
}
  )");
  EXPECT_EQ(out[0], 144.0);
  EXPECT_EQ(out[1], 42.0);
}

TEST(MinicExec, FunctionsMutateArrays) {
  const auto out = run(R"(
fn fill(a: float*, n: int, v: float) {
  for (var i: int = 0; i < n; i = i + 1) { a[i] = v; }
}
fn main() {
  var a: float* = alloc_float(4);
  fill(a, 4, 2.5);
  output_f(a[0] + a[3]);
}
  )");
  EXPECT_EQ(out[0], 5.0);
}

TEST(MinicExec, MathBuiltins) {
  const auto out = run(R"(
    output_f(sqrt(16.0));
    output_f(fabs(-3.0));
    output_f(floor(2.9));
    output_f(fmin(1.0, 2.0));
    output_f(fmax(1.0, 2.0));
    output_i(imin(4, 7));
    output_i(imax(4, 7));
    output_f(pow(2.0, 10.0));
  )");
  const std::vector<double> want{4, 3, 2, 1, 2, 4, 7, 1024};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, TranscendentalBuiltins) {
  const auto out = run(R"(
    output_f(exp(0.0));
    output_f(log(1.0));
    output_f(sin(0.0));
    output_f(cos(0.0));
  )");
  const std::vector<double> want{1, 0, 0, 1};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, Rand01DeterministicPerSeed) {
  const char* src = "output_f(rand01()); output_f(rand01());";
  const auto a = run(src);
  const auto b = run(src);
  EXPECT_EQ(a, b);
  EXPECT_NE(a[0], a[1]);
  EXPECT_GE(a[0], 0.0);
  EXPECT_LT(a[0], 1.0);
}

TEST(MinicExec, ClockIsMonotone) {
  const auto out = run(R"(
    var t0: int = clock();
    var s: int = 0;
    for (var i: int = 0; i < 100; i = i + 1) { s = s + i; }
    var t1: int = clock();
    output_i(t1 > t0);
  )");
  EXPECT_EQ(out[0], 1.0);
}

TEST(MinicExec, SingleRankMpiFallbacks) {
  const auto out = run(R"(
    output_i(mpi_rank());
    output_i(mpi_size());
    mpi_barrier();
    var a: float* = alloc_float(2);
    var b: float* = alloc_float(2);
    a[0] = 1.5; a[1] = 2.5;
    mpi_allreduce_sum_f(a, b, 2);
    output_f(b[0] + b[1]);
  )");
  const std::vector<double> want{0, 1, 4};
  EXPECT_EQ(out, want);
}

TEST(MinicExec, DivByZeroTraps) {
  run("var z: int = 0; output_i(1 / z);", vm::Trap::DivByZero);
  run("var z: int = 0; output_i(1 % z);", vm::Trap::DivByZero);
}

TEST(MinicExec, FloatDivByZeroIsInf) {
  const auto out = run("var z: float = 0.0; output_f(1.0 / z);");
  EXPECT_TRUE(std::isinf(out[0]));
}

TEST(MinicExec, OutOfBoundsAccessTraps) {
  run("var a: float* = alloc_float(2); output_f(a[1000000]);",
      vm::Trap::BadAccess);
  run("var a: float* = alloc_float(2); a[-1] = 0.0;", vm::Trap::BadAccess);
}

TEST(MinicExec, NullPointerTraps) {
  run("var p: float*; output_f(p[0]);", vm::Trap::BadAccess);
}

TEST(MinicExec, NegativeAllocTraps) {
  run("var a: float* = alloc_float(-5);", vm::Trap::BadAlloc);
}

TEST(MinicExec, InfiniteRecursionOverflows) {
  run(R"(
fn loop(n: int) -> int { return loop(n + 1); }
fn main() { output_i(loop(0)); }
  )",
      vm::Trap::StackOverflow);
}

TEST(MinicExec, MpiAbortTraps) {
  run("mpi_abort(3);", vm::Trap::MpiAbort);
}

TEST(MinicExec, NonBlockingNeedsAnMpiWorld) {
  // Without the MPI simulator attached there is no request table: the
  // non-blocking calls fault like an uninitialized MPI library would.
  run("var b: float* = alloc_float(1); var r: int = mpi_irecv_f(0, 0, b, 1);",
      vm::Trap::MpiFault);
  run("mpi_wait(1);", vm::Trap::MpiFault);
}

struct TypeErrorCase {
  const char* name;
  const char* src;
};

class MinicTypeErrors : public ::testing::TestWithParam<TypeErrorCase> {};

TEST_P(MinicTypeErrors, Rejected) {
  EXPECT_THROW(minic::compile(GetParam().src), CompileError);
}

INSTANTIATE_TEST_SUITE_P(
    Sema, MinicTypeErrors,
    ::testing::Values(
        TypeErrorCase{"int_plus_float", "fn main() { var x: int = 1 + 2.0; }"},
        TypeErrorCase{"assign_wrong_type", "fn main() { var x: int = 1.5; }"},
        TypeErrorCase{"float_condition", "fn main() { if (1.5) { } }"},
        TypeErrorCase{"rem_on_float", "fn main() { var x: float = 1.0 % 2.0; }"},
        TypeErrorCase{"shift_on_float", "fn main() { var x: float = 1.0 << 1; }"},
        TypeErrorCase{"index_non_pointer", "fn main() { var x: int = 1; output_i(x[0]); }"},
        TypeErrorCase{"float_index", "fn main() { var a: float* = alloc_float(2); output_f(a[1.0]); }"},
        TypeErrorCase{"unknown_variable", "fn main() { output_i(nope); }"},
        TypeErrorCase{"unknown_function", "fn main() { nope(); }"},
        TypeErrorCase{"redeclared_variable", "fn main() { var x: int; var x: int; }"},
        TypeErrorCase{"void_as_value", "fn main() { var x: int = mpi_barrier(); }"},
        TypeErrorCase{"wrong_arg_count", "fn main() { output_f(sqrt(1.0, 2.0)); }"},
        TypeErrorCase{"wrong_arg_type", "fn main() { output_f(sqrt(1)); }"},
        TypeErrorCase{"missing_main", "fn helper() { }"},
        TypeErrorCase{"main_with_params", "fn main(x: int) { }"},
        TypeErrorCase{"main_with_return", "fn main() -> int { return 0; }"},
        TypeErrorCase{"duplicate_function", "fn f() { } fn f() { } fn main() { }"},
        TypeErrorCase{"shadow_builtin", "fn sqrt(x: float) -> float { return x; } fn main() { }"},
        TypeErrorCase{"return_value_from_void", "fn f() { return 1; } fn main() { f(); }"},
        TypeErrorCase{"missing_return_value", "fn f() -> int { return; } fn main() { }"},
        TypeErrorCase{"break_outside_loop", "fn main() { break; }"},
        TypeErrorCase{"continue_outside_loop", "fn main() { continue; }"},
        TypeErrorCase{"pointer_compare_ordered",
                      "fn main() { var a: float* = alloc_float(1); var b: float* = alloc_float(1); output_i(a < b); }"},
        TypeErrorCase{"call_wrong_user_args",
                      "fn f(x: int) { } fn main() { f(1.0); }"},
        TypeErrorCase{"void_user_fn_as_value",
                      "fn f() { } fn main() { var x: int = f(); }"}),
    [](const ::testing::TestParamInfo<TypeErrorCase>& pi) {
      return pi.param.name;
    });

TEST(MinicExec, PointerEqualityAllowed) {
  const auto out = run(R"(
    var a: float* = alloc_float(1);
    var b: float* = a;
    var c: float* = alloc_float(1);
    output_i(a == b);
    output_i(a == c);
    output_i(a != c);
  )");
  const std::vector<double> want{1, 0, 1};
  EXPECT_EQ(out, want);
}

}  // namespace
}  // namespace fprop
