#include <gtest/gtest.h>

#include <map>

#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/support/stats.h"
#include "fprop/vm/interp.h"

namespace fprop::inject {
namespace {

ir::Module instrumented_counter_app(int iters) {
  std::string src = R"(
fn main() {
  var s: float = 0.0;
  for (var i: int = 0; i < )" + std::to_string(iters) + R"(; i = i + 1) {
    s = s + 1.5;
  }
  output_f(s);
}
)";
  ir::Module m = minic::compile(src);
  (void)passes::instrument_module(m);
  return m;
}

TEST(InjectionPlan, SingleConstruction) {
  const auto p = InjectionPlan::single(3, 100, 7);
  EXPECT_EQ(p.total_faults(), 1u);
  ASSERT_EQ(p.faults_by_rank.count(3), 1u);
  EXPECT_EQ(p.faults_by_rank.at(3)[0].dyn_index, 100u);
  EXPECT_EQ(p.faults_by_rank.at(3)[0].bit, 7u);
}

TEST(InjectorRuntime, CountingModeCountsDynamicPoints) {
  const ir::Module m = instrumented_counter_app(10);
  InjectorRuntime probe;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&probe);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  // Loop body: s + 1.5 has one non-const operand (s); i + 1 has one (i).
  // 10 iterations each => 20 dynamic points.
  EXPECT_EQ(probe.dynamic_points(0), 20u);
  EXPECT_TRUE(probe.events().empty());
}

TEST(InjectorRuntime, PlannedFlipFiresExactlyOnce) {
  const ir::Module m = instrumented_counter_app(10);
  InjectorRuntime inj(InjectionPlan::single(0, 5, 52));
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  ASSERT_EQ(inj.events().size(), 1u);
  const auto& e = inj.events()[0];
  EXPECT_EQ(e.rank, 0u);
  EXPECT_EQ(e.dyn_index, 5u);
  EXPECT_EQ(e.bit, 52u);
  EXPECT_EQ(e.after, e.before ^ (1ull << 52));
  // The flip changed the accumulator, so the output differs.
  EXPECT_NE(vm.outputs()[0], 15.0);
}

TEST(InjectorRuntime, OutOfRangeIndexNeverFires) {
  const ir::Module m = instrumented_counter_app(10);
  InjectorRuntime inj(InjectionPlan::single(0, 10'000, 3));
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  EXPECT_TRUE(inj.events().empty());
  EXPECT_DOUBLE_EQ(vm.outputs()[0], 15.0);
}

TEST(InjectorRuntime, WrongRankNeverFires) {
  const ir::Module m = instrumented_counter_app(10);
  InjectorRuntime inj(InjectionPlan::single(/*rank=*/4, 5, 3));
  vm::Interp vm(m, 0, vm::InterpConfig{});  // rank 0
  vm.set_inject_hook(&inj);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  EXPECT_TRUE(inj.events().empty());
}

TEST(InjectorRuntime, MultipleFaultsInOneRun) {
  const ir::Module m = instrumented_counter_app(20);
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{3, 1}, {7, 2}, {15, 3}};
  InjectorRuntime inj(plan);
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  ASSERT_EQ(inj.events().size(), 3u);
  EXPECT_EQ(inj.events()[0].dyn_index, 3u);
  EXPECT_EQ(inj.events()[1].dyn_index, 7u);
  EXPECT_EQ(inj.events()[2].dyn_index, 15u);
}

TEST(InjectionPlan, UnsortedPlanIsRejectedAtConstruction) {
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{15, 3}, {3, 1}};  // descending on purpose
  EXPECT_THROW(plan.validate(), Error);
  EXPECT_THROW(InjectorRuntime{plan}, Error);
}

TEST(InjectionPlan, DuplicateFaultIsRejectedAtConstruction) {
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{3, 1}, {3, 1}};  // the same flip twice
  EXPECT_THROW(plan.validate(), Error);
}

TEST(InjectionPlan, MultiBitStrikeAtOneIndexIsAccepted) {
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{3, 1}, {3, 5}};  // two bits, one dynamic point
  EXPECT_NO_THROW(plan.validate());
}

TEST(InjectorRuntime, MultiBitStrikeComposesAtOneDynamicPoint) {
  const ir::Module m = instrumented_counter_app(20);
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{5, 1}, {5, 52}};
  InjectorRuntime inj(plan);
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  ASSERT_EQ(inj.events().size(), 2u);
  EXPECT_EQ(inj.events()[0].dyn_index, 5u);
  EXPECT_EQ(inj.events()[1].dyn_index, 5u);
  // The second flip composes on top of the first (before == after of #1).
  EXPECT_EQ(inj.events()[1].before, inj.events()[0].after);
  EXPECT_EQ(inj.events()[1].after,
            inj.events()[0].before ^ (1ull << 1) ^ (1ull << 52));
}

TEST(InjectionPlan, UnsortedMsgFaultsAreRejected) {
  InjectionPlan plan;
  plan.msg_faults_by_rank[0] = {{7, MsgFaultTarget::Header, 0, 1},
                                {2, MsgFaultTarget::Header, 0, 1}};
  EXPECT_THROW(plan.validate(), Error);
}

TEST(InjectionPlan, DuplicateMsgFaultIsRejected) {
  InjectionPlan plan;
  plan.msg_faults_by_rank[0] = {{2, MsgFaultTarget::Payload, 9, 4},
                                {2, MsgFaultTarget::Payload, 9, 4}};
  EXPECT_THROW(plan.validate(), Error);
}

TEST(InjectionPlan, BitOutsideRegisterIsRejectedAtConstruction) {
  EXPECT_THROW(InjectionPlan::single(0, 5, /*bit=*/64), Error);
  InjectionPlan plan;
  plan.faults_by_rank[2] = {{3, 1}, {7, 200}};
  EXPECT_THROW(InjectorRuntime{plan}, Error);
}

TEST(InjectorRuntime, OverWidthBitIsRejectedAtInjection) {
  // A planned bit beyond the live value's type width (e.g. bit 37 of an i1
  // boolean) is a planning error: the runtime refuses it instead of silently
  // flipping a different bit than the plan records.
  ir::Module m = minic::compile(R"(
fn main() {
  var a: int = 3;
  var c: int = (a < 5) && (a > 1);
  output_i(c);
}
)");
  (void)passes::instrument_module(m);
  // Find a width-1 site id.
  std::int64_t bool_site = -1;
  for (const auto& block : m.find("main")->blocks) {
    for (const auto& in : block.code) {
      if (in.op == ir::Opcode::FimInj && in.inj_width == 1) {
        bool_site = in.imm;
      }
    }
  }
  ASSERT_GE(bool_site, 0);
  // Count dynamic points first to find the dynamic index of that site.
  InjectorRuntime probe;
  {
    vm::Interp vm(m, 0, vm::InterpConfig{});
    vm.set_inject_hook(&probe);
    ASSERT_EQ(vm.run(1u << 20), vm::RunState::Done);
  }
  bool rejected = false;
  for (std::uint64_t idx = 0; idx < probe.dynamic_points(0); ++idx) {
    InjectorRuntime inj(InjectionPlan::single(0, idx, /*bit=*/37));
    vm::Interp vm(m, 0, vm::InterpConfig{});
    vm.set_inject_hook(&inj);
    try {
      ASSERT_EQ(vm.run(1u << 20), vm::RunState::Done);
    } catch (const Error& e) {
      rejected = true;
      EXPECT_NE(std::string(e.what()).find("1-bit width"), std::string::npos);
      EXPECT_TRUE(inj.events().empty());  // rejected flips are not recorded
      continue;
    }
    // No throw: the fired site must have been wide enough for bit 37.
    ASSERT_EQ(inj.events().size(), 1u);
    EXPECT_NE(inj.events()[0].site_id, bool_site);
    EXPECT_EQ(inj.events()[0].bit, 37u);
  }
  EXPECT_TRUE(rejected) << "boolean site never executed";
}

TEST(InjectorRuntime, InWidthBitOnNarrowSiteStillFires) {
  // Bit 0 is valid for every width, including i1 sites.
  const ir::Module m = instrumented_counter_app(10);
  InjectorRuntime inj(InjectionPlan::single(0, 5, /*bit=*/0));
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events()[0].bit, 0u);
}

TEST(Sampling, SingleFaultRespectsCounts) {
  DynCounts counts{100, 0, 50};  // rank 1 executed nothing
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto plan = sample_single_fault(counts, rng);
    ASSERT_EQ(plan.total_faults(), 1u);
    const auto& [rank, faults] = *plan.faults_by_rank.begin();
    EXPECT_NE(rank, 1u);
    EXPECT_LT(faults[0].dyn_index, counts[rank]);
    EXPECT_LT(faults[0].bit, 64u);
  }
}

TEST(Sampling, AllRanksEmptyThrows) {
  DynCounts counts{0, 0};
  Xoshiro256 rng(7);
  EXPECT_THROW(sample_single_fault(counts, rng), Error);
}

TEST(Sampling, RankSelectionIsUniform) {
  DynCounts counts{10, 10, 10, 10};
  Xoshiro256 rng(11);
  Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8000; ++i) {
    const auto plan = sample_single_fault(counts, rng);
    h.add(static_cast<double>(plan.faults_by_rank.begin()->first));
  }
  EXPECT_TRUE(chi_squared_uniform(h).uniform_at_5pct);
}

TEST(Sampling, MultiFaultDrawsRequestedCount) {
  DynCounts counts{100, 100};
  Xoshiro256 rng(3);
  const auto plan = sample_faults(counts, 5, rng);
  EXPECT_EQ(plan.total_faults(), 5u);
  EXPECT_NO_THROW(plan.validate());  // sorted, duplicate-free by sampling
}

TEST(Sampling, SaturatedFaultSpaceYieldsFewerFaultsNotAHang) {
  // One rank, one dynamic point, 64 bits: 64 possible faults. Asking for
  // 100 must terminate with at most 64 (bounded redraws drop the rest).
  DynCounts counts{1};
  Xoshiro256 rng(17);
  const auto plan = sample_faults(counts, 100, rng);
  EXPECT_LE(plan.total_faults(), 64u);
  EXPECT_GE(plan.total_faults(), 32u);  // redraw budget finds most of them
  EXPECT_NO_THROW(plan.validate());
}

TEST(Sampling, SingleDrawStreamUnchangedByDedup) {
  // k=1 cannot collide, so the dedup/redraw path must consume exactly the
  // historical rng stream — the frozen campaign distributions depend on it.
  DynCounts counts{100, 0, 50};
  Xoshiro256 a(7), b(7);
  const auto plan = sample_single_fault(counts, a);
  const std::uint32_t rank_draw = static_cast<std::uint32_t>(
      b.next_below(2));  // two eligible ranks
  const std::uint32_t rank = rank_draw == 0 ? 0 : 2;
  const std::uint64_t idx = b.next_below(counts[rank]);
  const std::uint32_t bit = static_cast<std::uint32_t>(b.next_below(64));
  ASSERT_EQ(plan.faults_by_rank.count(rank), 1u);
  EXPECT_EQ(plan.faults_by_rank.at(rank)[0].dyn_index, idx);
  EXPECT_EQ(plan.faults_by_rank.at(rank)[0].bit, bit);
}

TEST(Sampling, MsgFaultsRespectCountsAndValidate) {
  MsgCounts counts{10, 0, 25};
  Xoshiro256 rng(5);
  InjectionPlan plan;
  const std::size_t added = sample_msg_faults(counts, 8, rng, plan);
  EXPECT_EQ(added, 8u);
  EXPECT_EQ(plan.total_msg_faults(), 8u);
  EXPECT_NO_THROW(plan.validate());
  for (const auto& [rank, faults] : plan.msg_faults_by_rank) {
    ASSERT_NE(rank, 1u);  // rank 1 sends nothing
    for (const auto& f : faults) {
      EXPECT_LT(f.msg_index, counts[rank]);
      EXPECT_LT(f.bit, 64u);
    }
  }
}

TEST(Sampling, MsgFaultsOnCommunicationFreeAppAddNothing) {
  MsgCounts counts{0, 0, 0};
  Xoshiro256 rng(5);
  InjectionPlan plan;
  EXPECT_EQ(sample_msg_faults(counts, 4, rng, plan), 0u);
  EXPECT_EQ(plan.total_msg_faults(), 0u);
}

TEST(InjectorRuntime, OnMessageFiresPlannedFaultAndReducesWord) {
  InjectionPlan plan;
  plan.msg_faults_by_rank[1] = {
      {2, MsgFaultTarget::Header, /*word=*/103, /*bit=*/4}};
  InjectorRuntime inj(plan);
  std::vector<std::uint64_t> header{3, 0, 42};  // 3 words -> 103 % 3 == 1
  std::vector<std::uint64_t> payload{7, 7};
  inj.on_message(1, 0, 100, header, payload);  // wrong msg_index: no-op
  EXPECT_TRUE(inj.msg_events().empty());
  inj.on_message(1, 2, 300, header, payload);
  ASSERT_EQ(inj.msg_events().size(), 1u);
  EXPECT_EQ(header[1], 0u ^ (1ull << 4));
  EXPECT_EQ(payload[0], 7u);  // payload untouched by a Header fault
  EXPECT_EQ(inj.msg_events()[0].word, 1u);  // post-reduction index recorded
  EXPECT_EQ(inj.msg_events()[0].cycle, 300u);
}

TEST(InjectorRuntime, FastForwardMsgsSkipsRestoredPrefix) {
  InjectionPlan plan;
  plan.msg_faults_by_rank[0] = {{1, MsgFaultTarget::Payload, 0, 2},
                                {5, MsgFaultTarget::Payload, 0, 3}};
  InjectorRuntime inj(plan);
  inj.fast_forward_msgs({3});  // messages 0..2 already sent in the prefix
  std::vector<std::uint64_t> header{0};
  std::vector<std::uint64_t> payload{0};
  inj.on_message(0, 1, 10, header, payload);  // skipped fault: must not fire
  EXPECT_TRUE(inj.msg_events().empty());
  inj.on_message(0, 5, 50, header, payload);
  ASSERT_EQ(inj.msg_events().size(), 1u);
  EXPECT_EQ(payload[0], 1ull << 3);
}

TEST(CycleProbe, RecordsCyclesOfRequestedPoints) {
  const ir::Module m = instrumented_counter_app(10);
  std::map<std::uint32_t, std::vector<std::uint64_t>> samples;
  samples[0] = {0, 5, 19, 5};  // includes a duplicate
  CycleProbe probe(std::move(samples));
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&probe);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  ASSERT_EQ(probe.samples().size(), 4u);  // duplicate counted twice
  // Cycles are nondecreasing in dynamic-index order, all on rank 0.
  EXPECT_LT(probe.samples()[0].second, probe.samples().back().second);
  for (const auto& [rank, cycle] : probe.samples()) EXPECT_EQ(rank, 0u);
}

}  // namespace
}  // namespace fprop::inject
