#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fprop/inject/injector.h"
#include "fprop/support/error.h"

// canonical_plan / dedup_key (DESIGN.md §14): the campaign dedup merges
// trials whose plans name the same flips after the runtime's fire-time bit
// reduction. The canonical form must (a) model that reduction exactly,
// (b) normalize ordering the way validate() demands, and (c) never merge two
// plans the runtime would treat differently.

namespace fprop::inject {
namespace {

/// widths[rank][dyn_index] profile helper.
DynWidths widths_for(std::vector<std::vector<std::uint8_t>> w) { return w; }

void expect_same_records(const std::vector<FaultRecord>& a,
                         const std::vector<FaultRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dyn_index, b[i].dyn_index) << "record " << i;
    EXPECT_EQ(a[i].bit, b[i].bit) << "record " << i;
  }
}

TEST(PlanCanon, EmptyWidthsIsIdentityOnValidPlans) {
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{3, 5}, {9, 63}};
  plan.faults_by_rank[2] = {{0, 0}};
  plan.msg_faults_by_rank[1] = {{4, MsgFaultTarget::Payload, 123, 7}};
  const InjectionPlan canon = canonical_plan(plan, DynWidths{});
  ASSERT_EQ(canon.faults_by_rank.size(), 2u);
  expect_same_records(canon.faults_by_rank.at(0), plan.faults_by_rank.at(0));
  expect_same_records(canon.faults_by_rank.at(2), plan.faults_by_rank.at(2));
  EXPECT_EQ(canon.msg_faults_by_rank.size(), 1u);
  EXPECT_EQ(dedup_key(plan, DynWidths{}), dedup_key(canon, DynWidths{}));
}

TEST(PlanCanon, ReducesBitsByRecordedWidth) {
  // dyn 0 is an i8 point: bit 10 fires as bit 10 % 8 == 2.
  const DynWidths widths = widths_for({{8, 64}});
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{0, 10}, {1, 10}};
  const InjectionPlan canon = canonical_plan(plan, widths);
  ASSERT_EQ(canon.faults_by_rank.at(0).size(), 2u);
  EXPECT_EQ(canon.faults_by_rank.at(0)[0].bit, 2u);   // reduced into i8
  EXPECT_EQ(canon.faults_by_rank.at(0)[1].bit, 10u);  // 64-bit: unchanged
  EXPECT_NO_THROW(canon.validate());
}

TEST(PlanCanon, WidthZeroMeansSixtyFour) {
  // A dyn_index beyond the recorded profile (or a 0 entry) is 64-bit.
  const DynWidths widths = widths_for({{0}});
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{0, 63}, {7, 63}};
  const InjectionPlan canon = canonical_plan(plan, widths);
  EXPECT_EQ(canon.faults_by_rank.at(0)[0].bit, 63u);
  EXPECT_EQ(canon.faults_by_rank.at(0)[1].bit, 63u);
}

TEST(PlanCanon, RngStreamEquivalentPlansShareOneKey) {
  // Two different raw draws on an i4 point that name the same physical flip:
  // bit 37 % 4 == bit 9 % 4 == 1. These arise from width-oblivious sampling
  // feeding width-aware fire-time reduction; dedup must merge them.
  const DynWidths widths = widths_for({{4}});
  InjectionPlan a;
  a.faults_by_rank[0] = {{0, 37}};
  InjectionPlan b;
  b.faults_by_rank[0] = {{0, 9}};
  EXPECT_EQ(dedup_key(a, widths), dedup_key(b, widths));
  // ...and a genuinely different flip does not merge.
  InjectionPlan c;
  c.faults_by_rank[0] = {{0, 38}};  // 38 % 4 == 2
  EXPECT_NE(dedup_key(a, widths), dedup_key(c, widths));
}

TEST(PlanCanon, ReductionCollisionRevertsTheRankToRawRecords) {
  // bits 5 and 13 both reduce to 5 on an i8 point — the canonical form would
  // carry a duplicate (dyn 0, bit 5), which validate() rejects as a planning
  // error. The rank must keep its raw records (and thus a distinct key)
  // rather than fabricate an invalid or lossy merge.
  const DynWidths widths = widths_for({{8}, {8}});
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{0, 5}, {0, 13}};
  const InjectionPlan canon = canonical_plan(plan, widths);
  expect_same_records(canon.faults_by_rank.at(0), plan.faults_by_rank.at(0));
  EXPECT_NO_THROW(canon.validate());
  // The collision is per-rank: an unaffected rank still canonicalizes.
  InjectionPlan two = plan;
  two.faults_by_rank[1] = {{0, 13}};
  const InjectionPlan canon2 = canonical_plan(two, widths);
  expect_same_records(canon2.faults_by_rank.at(0), plan.faults_by_rank.at(0));
  EXPECT_EQ(canon2.faults_by_rank.at(1)[0].bit, 5u);
}

TEST(PlanCanon, DropsEmptyRankEntriesAndResorts) {
  const DynWidths widths = widths_for({{8, 8}});
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{0, 2}, {1, 1}};
  plan.faults_by_rank[3] = {};  // an empty entry is not a semantic fault
  const InjectionPlan canon = canonical_plan(plan, widths);
  EXPECT_EQ(canon.faults_by_rank.count(3), 0u);
  // Same flips spelled with out-of-width raw bits; reduction makes the
  // records equal, so sorting must restore validate() order before keying.
  InjectionPlan raw;
  raw.faults_by_rank[0] = {{0, 10}, {1, 9}};  // 10%8=2, 9%8=1
  EXPECT_EQ(dedup_key(plan, widths), dedup_key(raw, widths));
  EXPECT_NO_THROW(canonical_plan(raw, widths).validate());
}

TEST(PlanCanon, MsgFaultsPassThroughButDistinguishKeys) {
  // Message-fault word draws reduce against live span lengths at fire time,
  // which no static profile knows — so they are keyed raw, never merged.
  InjectionPlan a;
  a.faults_by_rank[0] = {{5, 1}};
  InjectionPlan b = a;
  b.msg_faults_by_rank[0] = {{2, MsgFaultTarget::Header, 0, 3}};
  InjectionPlan c = a;
  c.msg_faults_by_rank[0] = {{2, MsgFaultTarget::Payload, 0, 3}};
  const DynWidths none;
  EXPECT_NE(dedup_key(a, none), dedup_key(b, none));
  EXPECT_NE(dedup_key(b, none), dedup_key(c, none));
  const InjectionPlan canon = canonical_plan(b, none);
  ASSERT_EQ(canon.msg_faults_by_rank.at(0).size(), 1u);
  EXPECT_EQ(canon.msg_faults_by_rank.at(0)[0].word, 0u);
  EXPECT_EQ(canon.msg_faults_by_rank.at(0)[0].bit, 3u);
}

TEST(PlanCanon, RanksAreKeyedDistinctly) {
  // The same (dyn, bit) on different ranks must never collapse to one key.
  InjectionPlan a;
  a.faults_by_rank[0] = {{7, 3}};
  InjectionPlan b;
  b.faults_by_rank[1] = {{7, 3}};
  EXPECT_NE(dedup_key(a, DynWidths{}), dedup_key(b, DynWidths{}));
}

TEST(PlanCanon, InvalidPlansAreRejected) {
  InjectionPlan plan;
  plan.faults_by_rank[0] = {{0, 64}};  // bit out of any register
  EXPECT_THROW(canonical_plan(plan, DynWidths{}), Error);
  EXPECT_THROW(dedup_key(plan, DynWidths{}), Error);
}

}  // namespace
}  // namespace fprop::inject
