# Empty dependencies file for fpm_test.
# This may be replaced when dependencies are built.
