file(REMOVE_RECURSE
  "CMakeFiles/fpm_test.dir/fpm/runtime_test.cpp.o"
  "CMakeFiles/fpm_test.dir/fpm/runtime_test.cpp.o.d"
  "CMakeFiles/fpm_test.dir/fpm/shadow_table_test.cpp.o"
  "CMakeFiles/fpm_test.dir/fpm/shadow_table_test.cpp.o.d"
  "fpm_test"
  "fpm_test.pdb"
  "fpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
