# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/minic_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/fpm_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/inject_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
