file(REMOVE_RECURSE
  "CMakeFiles/fig8_rank_spread.dir/fig8_rank_spread.cpp.o"
  "CMakeFiles/fig8_rank_spread.dir/fig8_rank_spread.cpp.o.d"
  "fig8_rank_spread"
  "fig8_rank_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rank_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
