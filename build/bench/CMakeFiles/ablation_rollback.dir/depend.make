# Empty dependencies file for ablation_rollback.
# This may be replaced when dependencies are built.
