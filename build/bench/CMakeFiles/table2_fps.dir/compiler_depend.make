# Empty compiler generated dependencies file for table2_fps.
# This may be replaced when dependencies are built.
