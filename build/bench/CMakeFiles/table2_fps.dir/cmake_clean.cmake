file(REMOVE_RECURSE
  "CMakeFiles/table2_fps.dir/table2_fps.cpp.o"
  "CMakeFiles/table2_fps.dir/table2_fps.cpp.o.d"
  "table2_fps"
  "table2_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
