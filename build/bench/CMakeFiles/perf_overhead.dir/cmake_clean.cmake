file(REMOVE_RECURSE
  "CMakeFiles/perf_overhead.dir/perf_overhead.cpp.o"
  "CMakeFiles/perf_overhead.dir/perf_overhead.cpp.o.d"
  "perf_overhead"
  "perf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
