# Empty compiler generated dependencies file for perf_overhead.
# This may be replaced when dependencies are built.
