file(REMOVE_RECURSE
  "CMakeFiles/perf_shadowtable.dir/perf_shadowtable.cpp.o"
  "CMakeFiles/perf_shadowtable.dir/perf_shadowtable.cpp.o.d"
  "perf_shadowtable"
  "perf_shadowtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_shadowtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
