# Empty dependencies file for perf_shadowtable.
# This may be replaced when dependencies are built.
