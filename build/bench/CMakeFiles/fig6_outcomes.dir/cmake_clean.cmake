file(REMOVE_RECURSE
  "CMakeFiles/fig6_outcomes.dir/fig6_outcomes.cpp.o"
  "CMakeFiles/fig6_outcomes.dir/fig6_outcomes.cpp.o.d"
  "fig6_outcomes"
  "fig6_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
