# Empty compiler generated dependencies file for fig6_outcomes.
# This may be replaced when dependencies are built.
