# Empty compiler generated dependencies file for ablation_taint.
# This may be replaced when dependencies are built.
