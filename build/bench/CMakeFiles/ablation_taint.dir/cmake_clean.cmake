file(REMOVE_RECURSE
  "CMakeFiles/ablation_taint.dir/ablation_taint.cpp.o"
  "CMakeFiles/ablation_taint.dir/ablation_taint.cpp.o.d"
  "ablation_taint"
  "ablation_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
