# Empty compiler generated dependencies file for fig5_coverage.
# This may be replaced when dependencies are built.
