file(REMOVE_RECURSE
  "CMakeFiles/perf_vm.dir/perf_vm.cpp.o"
  "CMakeFiles/perf_vm.dir/perf_vm.cpp.o.d"
  "perf_vm"
  "perf_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
