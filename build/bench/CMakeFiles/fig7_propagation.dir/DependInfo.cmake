
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_propagation.cpp" "bench/CMakeFiles/fig7_propagation.dir/fig7_propagation.cpp.o" "gcc" "bench/CMakeFiles/fig7_propagation.dir/fig7_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fprop_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/fprop_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/fprop_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/fprop_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fprop_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fprop_model.dir/DependInfo.cmake"
  "/root/repo/build/src/fpm/CMakeFiles/fprop_fpm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fprop_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/fprop_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fprop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fprop_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
