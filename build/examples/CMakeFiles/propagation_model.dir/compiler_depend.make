# Empty compiler generated dependencies file for propagation_model.
# This may be replaced when dependencies are built.
