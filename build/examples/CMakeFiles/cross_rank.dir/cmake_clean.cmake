file(REMOVE_RECURSE
  "CMakeFiles/cross_rank.dir/cross_rank.cpp.o"
  "CMakeFiles/cross_rank.dir/cross_rank.cpp.o.d"
  "cross_rank"
  "cross_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
