# Empty dependencies file for cross_rank.
# This may be replaced when dependencies are built.
