file(REMOVE_RECURSE
  "CMakeFiles/fprop_inject.dir/injector.cpp.o"
  "CMakeFiles/fprop_inject.dir/injector.cpp.o.d"
  "libfprop_inject.a"
  "libfprop_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
