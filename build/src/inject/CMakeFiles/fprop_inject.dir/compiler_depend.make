# Empty compiler generated dependencies file for fprop_inject.
# This may be replaced when dependencies are built.
