file(REMOVE_RECURSE
  "libfprop_inject.a"
)
