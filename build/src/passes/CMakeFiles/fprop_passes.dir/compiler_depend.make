# Empty compiler generated dependencies file for fprop_passes.
# This may be replaced when dependencies are built.
