file(REMOVE_RECURSE
  "CMakeFiles/fprop_passes.dir/passes.cpp.o"
  "CMakeFiles/fprop_passes.dir/passes.cpp.o.d"
  "libfprop_passes.a"
  "libfprop_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
