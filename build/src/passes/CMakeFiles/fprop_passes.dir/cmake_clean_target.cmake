file(REMOVE_RECURSE
  "libfprop_passes.a"
)
