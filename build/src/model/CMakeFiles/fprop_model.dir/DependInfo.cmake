
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/propagation_model.cpp" "src/model/CMakeFiles/fprop_model.dir/propagation_model.cpp.o" "gcc" "src/model/CMakeFiles/fprop_model.dir/propagation_model.cpp.o.d"
  "/root/repo/src/model/rollback_sim.cpp" "src/model/CMakeFiles/fprop_model.dir/rollback_sim.cpp.o" "gcc" "src/model/CMakeFiles/fprop_model.dir/rollback_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fprop_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fpm/CMakeFiles/fprop_fpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
