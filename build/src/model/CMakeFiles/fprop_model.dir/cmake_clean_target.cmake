file(REMOVE_RECURSE
  "libfprop_model.a"
)
