file(REMOVE_RECURSE
  "CMakeFiles/fprop_model.dir/propagation_model.cpp.o"
  "CMakeFiles/fprop_model.dir/propagation_model.cpp.o.d"
  "CMakeFiles/fprop_model.dir/rollback_sim.cpp.o"
  "CMakeFiles/fprop_model.dir/rollback_sim.cpp.o.d"
  "libfprop_model.a"
  "libfprop_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
