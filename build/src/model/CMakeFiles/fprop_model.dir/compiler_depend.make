# Empty compiler generated dependencies file for fprop_model.
# This may be replaced when dependencies are built.
