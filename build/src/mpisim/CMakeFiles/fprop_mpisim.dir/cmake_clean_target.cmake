file(REMOVE_RECURSE
  "libfprop_mpisim.a"
)
