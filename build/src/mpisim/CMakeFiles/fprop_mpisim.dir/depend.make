# Empty dependencies file for fprop_mpisim.
# This may be replaced when dependencies are built.
