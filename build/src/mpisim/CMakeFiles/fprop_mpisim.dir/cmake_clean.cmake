file(REMOVE_RECURSE
  "CMakeFiles/fprop_mpisim.dir/world.cpp.o"
  "CMakeFiles/fprop_mpisim.dir/world.cpp.o.d"
  "libfprop_mpisim.a"
  "libfprop_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
