file(REMOVE_RECURSE
  "libfprop_vm.a"
)
