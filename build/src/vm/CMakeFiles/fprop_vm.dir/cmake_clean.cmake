file(REMOVE_RECURSE
  "CMakeFiles/fprop_vm.dir/interp.cpp.o"
  "CMakeFiles/fprop_vm.dir/interp.cpp.o.d"
  "CMakeFiles/fprop_vm.dir/memory.cpp.o"
  "CMakeFiles/fprop_vm.dir/memory.cpp.o.d"
  "libfprop_vm.a"
  "libfprop_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
