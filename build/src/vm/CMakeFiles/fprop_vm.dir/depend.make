# Empty dependencies file for fprop_vm.
# This may be replaced when dependencies are built.
