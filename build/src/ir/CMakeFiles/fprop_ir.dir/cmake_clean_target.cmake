file(REMOVE_RECURSE
  "libfprop_ir.a"
)
