file(REMOVE_RECURSE
  "CMakeFiles/fprop_ir.dir/builder.cpp.o"
  "CMakeFiles/fprop_ir.dir/builder.cpp.o.d"
  "CMakeFiles/fprop_ir.dir/ir.cpp.o"
  "CMakeFiles/fprop_ir.dir/ir.cpp.o.d"
  "CMakeFiles/fprop_ir.dir/printer.cpp.o"
  "CMakeFiles/fprop_ir.dir/printer.cpp.o.d"
  "CMakeFiles/fprop_ir.dir/verifier.cpp.o"
  "CMakeFiles/fprop_ir.dir/verifier.cpp.o.d"
  "libfprop_ir.a"
  "libfprop_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
