# Empty dependencies file for fprop_ir.
# This may be replaced when dependencies are built.
