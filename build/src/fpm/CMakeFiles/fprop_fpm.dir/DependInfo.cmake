
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpm/message.cpp" "src/fpm/CMakeFiles/fprop_fpm.dir/message.cpp.o" "gcc" "src/fpm/CMakeFiles/fprop_fpm.dir/message.cpp.o.d"
  "/root/repo/src/fpm/runtime.cpp" "src/fpm/CMakeFiles/fprop_fpm.dir/runtime.cpp.o" "gcc" "src/fpm/CMakeFiles/fprop_fpm.dir/runtime.cpp.o.d"
  "/root/repo/src/fpm/shadow_table.cpp" "src/fpm/CMakeFiles/fprop_fpm.dir/shadow_table.cpp.o" "gcc" "src/fpm/CMakeFiles/fprop_fpm.dir/shadow_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fprop_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
