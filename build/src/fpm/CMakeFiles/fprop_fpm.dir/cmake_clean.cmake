file(REMOVE_RECURSE
  "CMakeFiles/fprop_fpm.dir/message.cpp.o"
  "CMakeFiles/fprop_fpm.dir/message.cpp.o.d"
  "CMakeFiles/fprop_fpm.dir/runtime.cpp.o"
  "CMakeFiles/fprop_fpm.dir/runtime.cpp.o.d"
  "CMakeFiles/fprop_fpm.dir/shadow_table.cpp.o"
  "CMakeFiles/fprop_fpm.dir/shadow_table.cpp.o.d"
  "libfprop_fpm.a"
  "libfprop_fpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_fpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
