# Empty dependencies file for fprop_fpm.
# This may be replaced when dependencies are built.
