file(REMOVE_RECURSE
  "libfprop_fpm.a"
)
