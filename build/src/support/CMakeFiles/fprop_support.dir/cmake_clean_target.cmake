file(REMOVE_RECURSE
  "libfprop_support.a"
)
