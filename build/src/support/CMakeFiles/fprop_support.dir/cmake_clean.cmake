file(REMOVE_RECURSE
  "CMakeFiles/fprop_support.dir/error.cpp.o"
  "CMakeFiles/fprop_support.dir/error.cpp.o.d"
  "CMakeFiles/fprop_support.dir/stats.cpp.o"
  "CMakeFiles/fprop_support.dir/stats.cpp.o.d"
  "CMakeFiles/fprop_support.dir/table.cpp.o"
  "CMakeFiles/fprop_support.dir/table.cpp.o.d"
  "libfprop_support.a"
  "libfprop_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
