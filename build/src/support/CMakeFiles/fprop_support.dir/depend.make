# Empty dependencies file for fprop_support.
# This may be replaced when dependencies are built.
