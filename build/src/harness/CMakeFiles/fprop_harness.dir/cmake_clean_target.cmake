file(REMOVE_RECURSE
  "libfprop_harness.a"
)
