file(REMOVE_RECURSE
  "CMakeFiles/fprop_harness.dir/harness.cpp.o"
  "CMakeFiles/fprop_harness.dir/harness.cpp.o.d"
  "libfprop_harness.a"
  "libfprop_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
