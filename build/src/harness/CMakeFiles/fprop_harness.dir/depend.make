# Empty dependencies file for fprop_harness.
# This may be replaced when dependencies are built.
