
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/codegen.cpp" "src/minic/CMakeFiles/fprop_minic.dir/codegen.cpp.o" "gcc" "src/minic/CMakeFiles/fprop_minic.dir/codegen.cpp.o.d"
  "/root/repo/src/minic/lexer.cpp" "src/minic/CMakeFiles/fprop_minic.dir/lexer.cpp.o" "gcc" "src/minic/CMakeFiles/fprop_minic.dir/lexer.cpp.o.d"
  "/root/repo/src/minic/parser.cpp" "src/minic/CMakeFiles/fprop_minic.dir/parser.cpp.o" "gcc" "src/minic/CMakeFiles/fprop_minic.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/fprop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fprop_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
