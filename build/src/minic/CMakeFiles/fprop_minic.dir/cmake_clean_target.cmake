file(REMOVE_RECURSE
  "libfprop_minic.a"
)
