file(REMOVE_RECURSE
  "CMakeFiles/fprop_minic.dir/codegen.cpp.o"
  "CMakeFiles/fprop_minic.dir/codegen.cpp.o.d"
  "CMakeFiles/fprop_minic.dir/lexer.cpp.o"
  "CMakeFiles/fprop_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/fprop_minic.dir/parser.cpp.o"
  "CMakeFiles/fprop_minic.dir/parser.cpp.o.d"
  "libfprop_minic.a"
  "libfprop_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
