# Empty compiler generated dependencies file for fprop_minic.
# This may be replaced when dependencies are built.
