src/apps/CMakeFiles/fprop_apps.dir/amg.cpp.o: /root/repo/src/apps/amg.cpp \
 /usr/include/stdc-predef.h /root/repo/src/apps/app_sources.h
