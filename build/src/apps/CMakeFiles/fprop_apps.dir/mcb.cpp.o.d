src/apps/CMakeFiles/fprop_apps.dir/mcb.cpp.o: /root/repo/src/apps/mcb.cpp \
 /usr/include/stdc-predef.h /root/repo/src/apps/app_sources.h
