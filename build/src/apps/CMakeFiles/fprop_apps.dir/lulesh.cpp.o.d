src/apps/CMakeFiles/fprop_apps.dir/lulesh.cpp.o: \
 /root/repo/src/apps/lulesh.cpp /usr/include/stdc-predef.h \
 /root/repo/src/apps/app_sources.h
