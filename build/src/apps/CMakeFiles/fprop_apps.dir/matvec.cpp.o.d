src/apps/CMakeFiles/fprop_apps.dir/matvec.cpp.o: \
 /root/repo/src/apps/matvec.cpp /usr/include/stdc-predef.h \
 /root/repo/src/apps/app_sources.h
