# Empty compiler generated dependencies file for fprop_apps.
# This may be replaced when dependencies are built.
