src/apps/CMakeFiles/fprop_apps.dir/lammps.cpp.o: \
 /root/repo/src/apps/lammps.cpp /usr/include/stdc-predef.h \
 /root/repo/src/apps/app_sources.h
