src/apps/CMakeFiles/fprop_apps.dir/minife.cpp.o: \
 /root/repo/src/apps/minife.cpp /usr/include/stdc-predef.h \
 /root/repo/src/apps/app_sources.h
