file(REMOVE_RECURSE
  "CMakeFiles/fprop_apps.dir/amg.cpp.o"
  "CMakeFiles/fprop_apps.dir/amg.cpp.o.d"
  "CMakeFiles/fprop_apps.dir/lammps.cpp.o"
  "CMakeFiles/fprop_apps.dir/lammps.cpp.o.d"
  "CMakeFiles/fprop_apps.dir/lulesh.cpp.o"
  "CMakeFiles/fprop_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/fprop_apps.dir/matvec.cpp.o"
  "CMakeFiles/fprop_apps.dir/matvec.cpp.o.d"
  "CMakeFiles/fprop_apps.dir/mcb.cpp.o"
  "CMakeFiles/fprop_apps.dir/mcb.cpp.o.d"
  "CMakeFiles/fprop_apps.dir/minife.cpp.o"
  "CMakeFiles/fprop_apps.dir/minife.cpp.o.d"
  "CMakeFiles/fprop_apps.dir/registry.cpp.o"
  "CMakeFiles/fprop_apps.dir/registry.cpp.o.d"
  "libfprop_apps.a"
  "libfprop_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fprop_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
