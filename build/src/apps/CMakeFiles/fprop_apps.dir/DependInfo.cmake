
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/amg.cpp" "src/apps/CMakeFiles/fprop_apps.dir/amg.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/amg.cpp.o.d"
  "/root/repo/src/apps/lammps.cpp" "src/apps/CMakeFiles/fprop_apps.dir/lammps.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/lammps.cpp.o.d"
  "/root/repo/src/apps/lulesh.cpp" "src/apps/CMakeFiles/fprop_apps.dir/lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/lulesh.cpp.o.d"
  "/root/repo/src/apps/matvec.cpp" "src/apps/CMakeFiles/fprop_apps.dir/matvec.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/matvec.cpp.o.d"
  "/root/repo/src/apps/mcb.cpp" "src/apps/CMakeFiles/fprop_apps.dir/mcb.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/mcb.cpp.o.d"
  "/root/repo/src/apps/minife.cpp" "src/apps/CMakeFiles/fprop_apps.dir/minife.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/minife.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/fprop_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/fprop_apps.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/fprop_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fprop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fprop_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
