file(REMOVE_RECURSE
  "libfprop_apps.a"
)
